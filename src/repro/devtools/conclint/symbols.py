"""Project-wide symbol table: modules, functions, classes, globals.

conclint reasons about the *whole program*, so before any rule runs it
builds an index of every module under the analyzed roots:

* every function and method, keyed by qualified name
  (``repro.core.runner._answer_chunk``,
  ``repro.engines.base.AnswerEngine.answer``), including nested
  functions (``module.outer.inner``) with a parent link — closures are
  how fork-unsafe state sneaks across the worker boundary;
* every class with its *resolved* base names, so the engine hierarchy
  (``ClaudeEngine -> GenerativeEngine -> AnswerEngine``) is walkable
  even across modules and import aliases;
* every module-level binding, classified by what kind of shared state it
  is: ``mutable`` (dicts/lists/sets and their collection cousins),
  ``resource`` (open file handles, locks, executors — fork-unsafe),
  ``rng`` (``random.Random`` / ``derive_rng`` instances, whose draw
  order is shared mutable state), or ``other``.

Name resolution reuses the shared :class:`ModuleContext` — aliased
imports cannot hide a symbol from the index any more than they can hide
a call from detlint's rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.common.context import (
    ModuleContext,
    collect_imports,
    module_name_for,
)
from repro.devtools.common.pragmas import Pragmas, parse_pragmas

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "GlobalVar",
    "ModuleInfo",
    "ProjectIndex",
    "classify_value",
    "iter_own_nodes",
]


def iter_own_nodes(node: ast.AST) -> "list[ast.AST]":
    """Every AST node belonging to ``node`` itself, in source order,
    *excluding* the bodies of nested function/class definitions (which
    are separate analysis units with their own qualified names).
    Lambdas stay included: they have no name of their own, so their
    bodies are attributed to the enclosing function.
    """
    collected: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop(0)
        collected.append(child)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return collected

#: Constructors whose product is shared *mutable* state when bound at
#: module level.
_MUTABLE_CTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "collections.defaultdict",
        "collections.Counter",
        "collections.deque",
        "collections.OrderedDict",
    }
)

#: Constructors whose product must never be captured into a forked
#: worker: OS-level handles and synchronization primitives duplicate
#: incoherently across fork, and executors deadlock.
_RESOURCE_CTORS = frozenset(
    {
        "open",
        "io.open",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.Lock",
    }
)

#: Constructors of stateful random streams.  A module-level instance is
#: shared mutable state (every draw advances it), which is exactly what
#: must not cross the worker boundary.
_RNG_CTORS = frozenset({"random.Random", "repro.llm.rng.derive_rng"})


def classify_value(node: ast.expr | None, ctx: ModuleContext) -> str:
    """Classify a module-level binding's value expression."""
    if node is None:
        return "other"
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return "mutable"
    if isinstance(node, ast.Call):
        resolved = ctx.resolve(node.func)
        if resolved is None and isinstance(node.func, ast.Name):
            # Builtins are not imported, so resolve() stays silent.
            resolved = node.func.id
        if resolved in _RESOURCE_CTORS:
            return "resource"
        if resolved in _RNG_CTORS or (
            isinstance(node.func, ast.Name) and node.func.id == "derive_rng"
        ):
            return "rng"
        if resolved in _MUTABLE_CTORS:
            return "mutable"
    return "other"


@dataclass
class FunctionInfo:
    """One function or method, with enough context to check it."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    lineno: int
    #: Qualified name of the owning class, or ``None`` for plain functions.
    cls: str | None = None
    #: Qualified name of the enclosing function for nested defs.
    parent: str | None = None
    #: name -> qualname of functions defined directly inside this one.
    nested: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class definition and its resolved bases."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Base names resolved to dotted paths where imports allow, else the
    #: raw source spelling.
    bases: tuple[str, ...] = ()
    #: method name -> function qualname.
    methods: dict[str, str] = field(default_factory=dict)


@dataclass
class GlobalVar:
    """One module-level binding."""

    qualname: str
    module: str
    name: str
    kind: str
    lineno: int


@dataclass
class ModuleInfo:
    """Everything the analyzer knows about one module."""

    path: str
    module: str
    tree: ast.Module
    ctx: ModuleContext
    pragmas: Pragmas
    #: top-level function name -> qualname.
    functions: dict[str, str] = field(default_factory=dict)
    #: class name -> qualname.
    classes: dict[str, str] = field(default_factory=dict)
    #: module-level binding name -> GlobalVar.
    globals: dict[str, GlobalVar] = field(default_factory=dict)


def _assign_targets(stmt: ast.stmt) -> list[tuple[str, ast.expr | None]]:
    """(name, value) pairs bound at module level by one statement."""
    pairs: list[tuple[str, ast.expr | None]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                pairs.append((target.id, stmt.value))
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        pairs.append((element.id, None))
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        pairs.append((stmt.target.id, stmt.value))
    return pairs


class ProjectIndex:
    """Symbol tables for every analyzed module, cross-referenced."""

    def __init__(self, tool: str = "conclint") -> None:
        #: Pragma namespace modules are parsed under — conclint by
        #: default; locklint builds its index with ``tool="locklint"``
        #: so the two analyzers' waivers stay independent.
        self.tool = tool
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: module-level binding qualname -> GlobalVar, across all modules.
        self.globals: dict[str, GlobalVar] = {}
        #: files that failed to parse: path -> SyntaxError.
        self.broken: dict[str, SyntaxError] = {}

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def build(cls, files: list[Path], tool: str = "conclint") -> "ProjectIndex":
        index = cls(tool=tool)
        for file_path in files:
            index.add_module(file_path.read_text(encoding="utf-8"), file_path)
        return index

    def add_module(self, source: str, path: str | Path) -> ModuleInfo | None:
        display = str(path)
        module = module_name_for(Path(display).parts)
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            self.broken[display] = exc
            return None
        ctx = ModuleContext(
            path=display,
            module=module,
            source_lines=source.splitlines(),
            imports=collect_imports(tree, module),
        )
        info = ModuleInfo(
            path=display,
            module=module,
            tree=tree,
            ctx=ctx,
            pragmas=parse_pragmas(source, tool=self.tool),
        )
        self.modules[module] = info
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, stmt, prefix=module)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(info, stmt)
            else:
                for name, value in _assign_targets(stmt):
                    var = GlobalVar(
                        qualname=f"{module}.{name}",
                        module=module,
                        name=name,
                        kind=classify_value(value, ctx),
                        lineno=stmt.lineno,
                    )
                    info.globals[name] = var
                    self.globals[var.qualname] = var
        return info

    def _add_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        cls: str | None = None,
        parent: FunctionInfo | None = None,
    ) -> FunctionInfo:
        qualname = f"{prefix}.{node.name}"
        fn = FunctionInfo(
            qualname=qualname,
            module=info.module,
            name=node.name,
            node=node,
            lineno=node.lineno,
            cls=cls,
            parent=parent.qualname if parent else None,
        )
        self.functions[qualname] = fn
        if parent is not None:
            parent.nested[node.name] = qualname
        elif cls is None:
            info.functions[node.name] = qualname
        # Nested defs get their own entries: a closure submitted to a
        # pool is a worker entry point in its own right.
        for child in iter_own_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, child, prefix=qualname, parent=fn)
        return fn

    def _add_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{info.module}.{node.name}"
        bases = []
        for base in node.bases:
            resolved = info.ctx.resolve(base)
            if resolved is None and isinstance(base, ast.Name):
                # A base defined in the same module.
                local = info.classes.get(base.id)
                resolved = local or base.id
            bases.append(resolved or ast.unparse(base))
        cls_info = ClassInfo(
            qualname=qualname,
            module=info.module,
            name=node.name,
            node=node,
            bases=tuple(bases),
        )
        self.classes[qualname] = cls_info
        info.classes[node.name] = qualname
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._add_function(info, stmt, prefix=qualname, cls=qualname)
                cls_info.methods[stmt.name] = fn.qualname

    # ------------------------------------------------------------------
    # Lookups

    def ancestors(self, class_qualname: str) -> list[str]:
        """Resolved base-class names, transitively, in-project or not."""
        seen: list[str] = []
        frontier = [class_qualname]
        while frontier:
            current = frontier.pop(0)
            info = self.classes.get(current)
            if info is None:
                continue
            for base in info.bases:
                if base not in seen:
                    seen.append(base)
                    frontier.append(base)
        return seen

    def descendants(self, class_qualname: str) -> list[str]:
        """In-project classes that (transitively) inherit from this one."""
        found: list[str] = []
        changed = True
        covered = {class_qualname}
        while changed:
            changed = False
            for name in sorted(self.classes):
                if name in covered:
                    continue
                if any(base in covered for base in self.classes[name].bases):
                    covered.add(name)
                    found.append(name)
                    changed = True
        return found

    def class_family(self, class_qualname: str) -> list[str]:
        """The class, its ancestors, and every descendant of any of them.

        ``self.method(...)`` can dispatch anywhere in this set — that is
        the over-approximation that makes ``AnswerEngine.answer`` reach
        every engine's ``_answer_uncached``.
        """
        roots = [class_qualname, *self.ancestors(class_qualname)]
        family: list[str] = []
        for root in roots:
            if root in self.classes and root not in family:
                family.append(root)
            for descendant in self.descendants(root):
                if descendant not in family:
                    family.append(descendant)
        return family

    def methods_named(self, name: str) -> list[str]:
        """Every project method with this name, across all classes."""
        return [
            info.methods[name]
            for __, info in sorted(self.classes.items())
            if name in info.methods
        ]

    def resolve_global(
        self, node: ast.expr, minfo: ModuleInfo
    ) -> GlobalVar | None:
        """The module-level binding an expression refers to, if any.

        Handles bare names in the same module and dotted/imported
        references to other analyzed modules.
        """
        if isinstance(node, ast.Name):
            var = minfo.globals.get(node.id)
            if var is not None:
                return var
            imported = minfo.ctx.imports.get(node.id)
            if imported is not None:
                return self.globals.get(imported)
            return None
        if isinstance(node, ast.Attribute):
            resolved = minfo.ctx.resolve(node)
            if resolved is not None:
                return self.globals.get(resolved)
        return None
