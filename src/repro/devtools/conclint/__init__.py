"""conclint — interprocedural concurrency-safety analysis.

PR 1 made the study runner parallel; the "byte-identical under
``workers=N``" guarantee holds only as long as nothing reachable from a
pool worker mutates shared state.  conclint machine-checks that sharing
contract: it builds a project-wide symbol table and an approximate call
graph over ``src/repro``, computes the set of functions reachable from
the pool entry points (``repro.core.runner._answer_chunk``, anything
handed to an ``Executor.submit``, and every engine
``answer``/``_answer_uncached`` implementation), then enforces:

=======  ==========================================================
CONC001  module-level state mutated from worker-reachable code
         (the ``_WORKER_WORLD`` fork handshake is the one
         allowlisted write)
CONC002  shared instance caches (memo dicts, hit/miss counters)
         written on paths not holding the corresponding lock
CONC003  parent-side mutation of objects already shipped to forked
         workers by inheritance (world divergence after pool start)
CONC004  fork-unsafe resources (open handles, locks, executors)
         referenced by worker-reachable code or captured closures
CONC005  a shared ``random.Random`` instance crossing the worker
         boundary instead of a ``derive_rng`` per-task stream
=======  ==========================================================

Waive a single site with ``# conclint: ignore[CONC001] -- reason``;
grandfather legacy debt in ``.conclint-baseline.json`` (entries carry
mandatory reasons).  Run via ``python -m repro conclint``;
``--dump-callgraph`` emits the deterministic call-graph JSON the
analysis ran against.  The findings/pragma/baseline/reporter machinery
lives in :mod:`repro.devtools.common`, shared with detlint and
locklint; locklint also reuses this package's :class:`ProjectIndex`
and call graph.
"""

from repro.devtools.conclint.callgraph import CallGraph, build_callgraph
from repro.devtools.conclint.rules import (
    AnalysisContext,
    ConcRule,
    all_conc_rules,
    conc_rule_table,
    register_conc,
)
from repro.devtools.conclint.runner import AnalysisResult, analyze_paths
from repro.devtools.conclint.symbols import ProjectIndex

__all__ = [
    "AnalysisContext",
    "AnalysisResult",
    "CallGraph",
    "ConcRule",
    "ProjectIndex",
    "all_conc_rules",
    "analyze_paths",
    "build_callgraph",
    "conc_rule_table",
    "register_conc",
]
