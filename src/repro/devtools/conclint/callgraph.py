"""Approximate call graph and worker-reachability analysis.

The graph is deliberately an *over*-approximation — a concurrency
analyzer that misses a reachable mutation is worthless, while one that
checks a few extra functions merely works harder:

* calls to names and dotted paths resolve through each module's import
  table (same machinery as detlint);
* ``self.method(...)`` dispatches class-hierarchy-aware: to the method
  in the receiver's class, any ancestor, or any in-project descendant —
  this is what carries reachability from ``AnswerEngine.answer_all``
  into every engine's ``_answer_uncached``;
* a method call on a receiver the analyzer cannot type
  (``world.engines[name].answer_all(...)``) falls back to linking every
  in-project method of that name (class-hierarchy analysis's classic
  cheap cousin);
* functions handed to ``Executor.submit`` / ``Pool.map`` and friends
  become **entry points**, as do the configured pool entry
  (``repro.core.runner._answer_chunk``) and every ``answer`` /
  ``_answer_uncached`` / ``answer_all`` implementation in the
  :class:`AnswerEngine` hierarchy.

Reachability is a BFS from the entry points over the edge set; every
reachable function records which entry first reached it, so findings
can say *why* a function is considered worker-side.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field

from repro.devtools.conclint.symbols import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    iter_own_nodes,
)

__all__ = ["CallGraph", "build_callgraph"]

#: Functions that are pool entry points by project convention.
CONFIGURED_ENTRIES = ("repro.core.runner._answer_chunk",)

#: The engine base class; ``answer``/``_answer_uncached``/``answer_all``
#: implementations anywhere under it run inside pool workers.
ENGINE_BASE = "repro.engines.base.AnswerEngine"
ENGINE_ENTRY_METHODS = frozenset({"answer", "_answer_uncached", "answer_all"})

#: Method names whose first callable argument crosses an executor/pool
#: boundary.
SUBMIT_METHODS = frozenset(
    {"submit", "map", "apply_async", "map_async", "imap", "imap_unordered"}
)

#: Attribute names that never resolve to project methods worth linking.
_SKIP_FALLBACK = frozenset({"__init__", "__new__", "__call__"})


@dataclass
class CallGraph:
    """Edges, entry points, and the worker-reachable set."""

    index: ProjectIndex
    #: caller qualname -> callee qualnames.
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: entry qualname -> human-readable reason it is an entry.
    entries: dict[str, str] = field(default_factory=dict)
    #: reachable qualname -> the entry point that first reached it.
    reachable: dict[str, str] = field(default_factory=dict)

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def add_entry(self, qualname: str, reason: str) -> None:
        if qualname in self.index.functions:
            self.entries.setdefault(qualname, reason)

    def is_worker_reachable(self, qualname: str) -> bool:
        return qualname in self.reachable

    def reached_via(self, qualname: str) -> str | None:
        return self.reachable.get(qualname)

    # ------------------------------------------------------------------

    def compute_reachability(self) -> None:
        """BFS from the entries; deterministic via sorted iteration."""
        self.reachable = {}
        frontier = []
        for entry in sorted(self.entries):
            self.reachable[entry] = entry
            frontier.append(entry)
        while frontier:
            current = frontier.pop(0)
            origin = self.reachable[current]
            for callee in sorted(self.edges.get(current, ())):
                if callee in self.index.functions and callee not in self.reachable:
                    self.reachable[callee] = origin
                    frontier.append(callee)

    def to_dict(self) -> dict[str, object]:
        """Deterministic JSON-ready form for ``--dump-callgraph``."""
        return {
            "modules": sorted(self.index.modules),
            "functions": {
                qualname: {"module": fn.module, "line": fn.lineno}
                for qualname, fn in sorted(self.index.functions.items())
            },
            "edges": sorted(
                [caller, callee]
                for caller, callees in self.edges.items()
                for callee in callees
            ),
            "entry_points": {
                qualname: reason for qualname, reason in sorted(self.entries.items())
            },
            "reachable": {
                qualname: via for qualname, via in sorted(self.reachable.items())
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Construction


def _is_engine_class(index: ProjectIndex, class_qualname: str) -> bool:
    if class_qualname == ENGINE_BASE:
        return True
    return ENGINE_BASE in index.ancestors(class_qualname)


def _callable_targets(
    node: ast.expr,
    fn: FunctionInfo,
    minfo: ModuleInfo,
    index: ProjectIndex,
) -> list[str]:
    """Qualified names an expression may call, resolved best-effort."""
    # Plain name: nested function, module function, class, or import.
    if isinstance(node, ast.Name):
        if node.id in fn.nested:
            return [fn.nested[node.id]]
        parent = index.functions.get(fn.parent) if fn.parent else None
        while parent is not None:
            if node.id in parent.nested:
                return [parent.nested[node.id]]
            parent = index.functions.get(parent.parent) if parent.parent else None
        if node.id in minfo.functions:
            return [minfo.functions[node.id]]
        if node.id in minfo.classes:
            return _class_init(index, minfo.classes[node.id])
        imported = minfo.ctx.imports.get(node.id)
        if imported is not None:
            return _dotted_targets(index, imported)
        return []
    if not isinstance(node, ast.Attribute):
        return []
    # self/cls dispatch: class-hierarchy aware.
    receiver = node.value
    if (
        isinstance(receiver, ast.Name)
        and receiver.id in ("self", "cls")
        and fn.cls is not None
    ):
        targets = []
        for family_member in index.class_family(fn.cls):
            method = index.classes[family_member].methods.get(node.attr)
            if method is not None:
                targets.append(method)
        return targets
    # Fully resolved dotted path (module function, Class.method, class).
    resolved = minfo.ctx.resolve(node)
    if resolved is not None:
        return _dotted_targets(index, resolved)
    # Unknown receiver: link by method name across the project (cheap
    # CHA fallback; over-approximate on purpose).
    if node.attr in _SKIP_FALLBACK:
        return []
    return index.methods_named(node.attr)


def _dotted_targets(index: ProjectIndex, dotted: str) -> list[str]:
    if dotted in index.functions:
        return [dotted]
    if dotted in index.classes:
        return _class_init(index, dotted)
    return []


def _class_init(index: ProjectIndex, class_qualname: str) -> list[str]:
    """Constructing a class runs its (possibly inherited) __init__."""
    for candidate in [class_qualname, *index.ancestors(class_qualname)]:
        info = index.classes.get(candidate)
        if info is not None and "__init__" in info.methods:
            return [info.methods["__init__"]]
    return []


def build_callgraph(index: ProjectIndex) -> CallGraph:
    graph = CallGraph(index=index)

    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        minfo = index.modules[fn.module]
        for node in iter_own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for target in _callable_targets(node.func, fn, minfo, index):
                graph.add_edge(qualname, target)
            # Submission boundary: the submitted callable is an entry
            # point as well as a callee.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SUBMIT_METHODS
                and node.args
            ):
                for target in _callable_targets(node.args[0], fn, minfo, index):
                    graph.add_edge(qualname, target)
                    graph.add_entry(
                        target, f"submitted to a pool by {qualname}"
                    )

    for entry in CONFIGURED_ENTRIES:
        graph.add_entry(entry, "configured pool entry point")

    for class_qualname in sorted(index.classes):
        if not _is_engine_class(index, class_qualname):
            continue
        methods = index.classes[class_qualname].methods
        for method_name in sorted(ENGINE_ENTRY_METHODS & set(methods)):
            graph.add_entry(
                methods[method_name],
                f"engine {method_name} implementation ({class_qualname})",
            )

    graph.compute_reachability()
    return graph
