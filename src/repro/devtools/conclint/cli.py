"""The ``python -m repro conclint`` subcommand."""

from __future__ import annotations

import argparse
import sys

from repro.devtools.conclint.rules import conc_rule_table
from repro.devtools.conclint.runner import analyze_paths
from repro.devtools.detlint.baseline import existing_reasons, write_baseline
from repro.devtools.detlint.reporters import render_json, render_text
from repro.devtools.detlint.runner import DEFAULT_PATHS

__all__ = ["configure_parser", "run_conclint"]

DEFAULT_BASELINE = ".conclint-baseline.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=f"files or directories to analyze (default: {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="FILE",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (every finding blocks)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show pragma-waived findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--dump-callgraph",
        action="store_true",
        help="emit the call graph, entry points and worker-reachable set "
        "as deterministic JSON and exit",
    )


def run_conclint(args: argparse.Namespace, out=None) -> int:
    out = out if out is not None else sys.stdout
    if args.list_rules:
        for code, title, summary in conc_rule_table():
            print(f"{code}  {title:<22} {summary}", file=out)
        return 0

    baseline = None if args.no_baseline else args.baseline
    report = analyze_paths(args.paths or None, baseline=baseline)

    if args.dump_callgraph:
        print(report.graph.to_json(), file=out)
        return 0

    if args.update_baseline:
        write_baseline(
            report.findings, args.baseline, reasons=existing_reasons(args.baseline)
        )
        print(
            f"baseline updated: {args.baseline} "
            f"({len([f for f in report.findings if not f.waived])} entries)",
            file=out,
        )
        return 0

    if args.format == "json":
        print(render_json(report), file=out)
    else:
        print(render_text(report, verbose=args.verbose, tool="conclint"), file=out)
    return report.exit_code
