"""The ``python -m repro conclint`` subcommand (shared CLI skeleton)."""

from __future__ import annotations

import argparse

from repro.devtools.common.cli import DumpOption, ToolCLI, run_tool
from repro.devtools.common.cli import configure_parser as _configure
from repro.devtools.conclint.rules import conc_rule_table
from repro.devtools.conclint.runner import analyze_paths

__all__ = ["configure_parser", "run_conclint"]

DEFAULT_BASELINE = ".conclint-baseline.json"

CLI = ToolCLI(
    tool="conclint",
    default_baseline=DEFAULT_BASELINE,
    analyze=analyze_paths,
    rule_table=conc_rule_table,
    dumps=(
        DumpOption(
            flag="--dump-callgraph",
            help="emit the call graph, entry points and worker-reachable set "
            "as deterministic JSON and exit",
            render=lambda report: report.graph.to_json(),
        ),
    ),
)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    _configure(parser, CLI)


def run_conclint(args: argparse.Namespace, out=None) -> int:
    return run_tool(args, CLI, out)
