"""The ``python -m repro locklint`` subcommand (shared CLI skeleton)."""

from __future__ import annotations

import argparse

from repro.devtools.common.cli import DumpOption, ToolCLI, run_tool
from repro.devtools.common.cli import configure_parser as _configure
from repro.devtools.locklint.rules import lock_rule_table
from repro.devtools.locklint.runner import analyze_paths

__all__ = ["configure_parser", "run_locklint"]

DEFAULT_BASELINE = ".locklint-baseline.json"

CLI = ToolCLI(
    tool="locklint",
    default_baseline=DEFAULT_BASELINE,
    analyze=analyze_paths,
    rule_table=lock_rule_table,
    dumps=(
        DumpOption(
            flag="--dump-lockgraph",
            help="emit the lock sites, acquired-while-held edges and "
            "canonical hierarchy as deterministic JSON and exit",
            render=lambda report: report.graph.to_json(),
        ),
    ),
)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    _configure(parser, CLI)


def run_locklint(args: argparse.Namespace, out=None) -> int:
    return run_tool(args, CLI, out)
