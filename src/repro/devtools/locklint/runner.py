"""locklint orchestration: index, sites, lock graph, rules, waivers.

The pipeline mirrors conclint's whole-program shape and reuses its
:class:`~repro.devtools.conclint.symbols.ProjectIndex` (built under the
``locklint`` pragma namespace):

1. parse every module under the analyzed roots;
2. discover the lock sites and type tables
   (:mod:`repro.devtools.locklint.sites`);
3. build the acquired-while-held graph
   (:mod:`repro.devtools.locklint.lockgraph`);
4. evaluate LOCK001–LOCK005 and apply ``# locklint: ignore[...]``
   pragmas and the ``.locklint-baseline.json`` baseline via the shared
   :mod:`repro.devtools.common` machinery.

``repro.lockorder`` — the runtime witness — is exempt by construction:
it *implements* locks (``OrderedLock`` wraps acquire/release across
method boundaries), so it cannot satisfy the caller-side discipline it
exists to enforce, exactly as ``repro.core.config`` is exempt from
detlint's environ rule.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.common.baseline import apply_baseline, load_baseline
from repro.devtools.common.findings import Finding
from repro.devtools.common.pragmas import apply_waivers
from repro.devtools.common.report import (
    DEFAULT_PATHS,
    LintReport,
    iter_python_files,
)
from repro.devtools.conclint.symbols import ProjectIndex
from repro.devtools.locklint.lockgraph import LockGraph, build_lockgraph
from repro.devtools.locklint.rules import run_rules
from repro.devtools.locklint.sites import build_sites

__all__ = ["EXEMPT_MODULES", "LockAnalysis", "analyze_paths"]

#: Module prefixes the lock-discipline rules do not apply to.
EXEMPT_MODULES = ("repro.lockorder",)


class LockAnalysis(LintReport):
    """A lint report plus the lock graph it was computed against."""

    def __init__(self, findings, files_checked: int, graph: LockGraph) -> None:
        super().__init__(findings=findings, files_checked=files_checked)
        self.graph = graph


def _exempt(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in EXEMPT_MODULES
    )


def analyze_paths(
    paths: list[str | Path] | None = None,
    baseline: str | Path | None = None,
) -> LockAnalysis:
    """Analyze files/trees and apply the baseline; the main entry point."""
    targets = list(paths) if paths else [Path(p) for p in DEFAULT_PATHS]
    files = iter_python_files(targets)
    index = ProjectIndex.build(files, tool="locklint")

    table = build_sites(index)
    # The witness module's internal locks are implementation detail,
    # not part of the project hierarchy.
    for name in [
        name for name, site in table.sites.items() if _exempt(site.owner)
    ]:
        site = table.sites.pop(name)
        table.attr_sites.pop((site.owner, site.binding), None)
        table.local_sites.pop((site.owner, site.binding), None)

    graph = build_lockgraph(index, table, exempt_modules=EXEMPT_MODULES)

    findings: list[Finding] = []
    for display_path in sorted(index.broken):
        exc = index.broken[display_path]
        findings.append(
            Finding(
                path=display_path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="LOCK000",
                message=f"file does not parse: {exc.msg}",
            )
        )
    findings.extend(run_rules(graph))
    findings.sort()

    # Pragma waivers, per module (same two-anchor semantics as the
    # sibling analyzers).
    by_path = {
        minfo.path: minfo.pragmas for minfo in index.modules.values()
    }
    waived: list[Finding] = []
    for finding in findings:
        pragmas = by_path.get(finding.path)
        if pragmas is None:
            waived.append(finding)
        elif pragmas.skip_file:
            continue
        else:
            waived.extend(apply_waivers([finding], pragmas))
    findings = waived

    base_dir = Path(baseline).resolve().parent if baseline is not None else None
    findings = apply_baseline(findings, load_baseline(baseline), base_dir)
    return LockAnalysis(
        findings=findings, files_checked=len(files), graph=graph
    )
