"""Held-set walking and the acquired-while-held lock graph.

The analysis runs in two layers:

1. **Per function** (:func:`summarize_function`): walk the statements
   tracking the set of mutex sites held at each point (``with`` blocks
   define held regions), recording every direct acquisition, every call
   with its held set, every *blocking* operation (``Event.wait``,
   ``Future.result``, ``Queue.get/put``, ``time.sleep``, subprocess and
   file I/O, ``Semaphore.acquire``), every explicit ``.acquire()`` for
   the LOCK004 pairing check, and every ``Condition.wait`` with its
   loop context for LOCK005.

2. **Whole program** (:class:`LockGraph`): a fixpoint over the typed
   call edges computes ``acquires_star`` (every site a function may
   acquire transitively, with a provenance chain) and ``blocked_star``
   (every blocking operation it may reach).  Crossing each call's held
   set with the callee's ``acquires_star`` yields the interprocedural
   acquired-while-held edges; cycles are LOCK001, self-edges on
   non-reentrant sites are LOCK003, and a topological sort of the edge
   set is the canonical hierarchy the runtime witness
   (:data:`repro.lockorder.CANONICAL_HIERARCHY`) must agree with.

Receiver resolution is strictly typed (see
:mod:`repro.devtools.locklint.sites`): an unknown receiver contributes
no edges and no blocking ops.  Missing an edge is the price of never
inventing one — the runtime witness exists to catch what static
under-approximation misses.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field

from repro.devtools.conclint.symbols import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    iter_own_nodes,
)
from repro.devtools.locklint.sites import (
    LockSite,
    SiteTable,
    resolve_annotation,
)

__all__ = ["FunctionSummary", "LockGraph", "build_lockgraph"]

#: Dotted calls that block the calling thread outright.
BLOCKING_CALLS = {
    "time.sleep": "time.sleep",
    "subprocess.run": "subprocess.run",
    "subprocess.call": "subprocess.call",
    "subprocess.check_call": "subprocess.check_call",
    "subprocess.check_output": "subprocess.check_output",
    "subprocess.Popen": "subprocess.Popen",
    "os.system": "os.system",
}

#: Blocking methods per receiver *type* — only fires when the receiver
#: resolves to that type, so ``dict.get`` never reads as ``Queue.get``.
BLOCKING_METHODS = {
    "threading.Event": {"wait": "Event.wait"},
    "concurrent.futures.Future": {
        "result": "Future.result",
        "exception": "Future.exception",
    },
    "queue.Queue": {"get": "Queue.get", "put": "Queue.put", "join": "Queue.join"},
    "queue.SimpleQueue": {"get": "Queue.get", "put": "Queue.put"},
    "pathlib.Path": {
        "open": "file I/O (Path.open)",
        "read_text": "file I/O (Path.read_text)",
        "write_text": "file I/O (Path.write_text)",
        "read_bytes": "file I/O (Path.read_bytes)",
        "write_bytes": "file I/O (Path.write_bytes)",
    },
}


@dataclass(frozen=True)
class Edge:
    """One acquired-while-held edge with its first-seen provenance."""

    outer: str
    inner: str
    path: str
    line: int
    via: str


@dataclass
class FunctionSummary:
    """Everything locklint observed in one function."""

    fn: FunctionInfo
    #: (site, line, held-at-acquisition) — ``with`` acquisitions and
    #: explicit ``.acquire()`` on mutex sites.
    acquires: list[tuple[str, int, tuple[str, ...]]] = field(default_factory=list)
    #: (line, held, callee qualnames) for typed project calls.
    calls: list[tuple[int, tuple[str, ...], tuple[str, ...]]] = field(
        default_factory=list
    )
    #: (line, held, description) for direct blocking operations.
    blocking: list[tuple[int, tuple[str, ...], str]] = field(default_factory=list)
    #: (site, line) explicit ``.acquire()`` calls (LOCK004 candidates).
    acquire_calls: list[tuple[str, int]] = field(default_factory=list)
    #: (site, line, in_predicate_loop) for ``Condition.wait``.
    waits: list[tuple[str, int, bool]] = field(default_factory=list)


# ----------------------------------------------------------------------
# Typed receiver resolution


class _Resolver:
    """Expression typing scoped to one function walk."""

    def __init__(
        self,
        fn: FunctionInfo,
        minfo: ModuleInfo,
        index: ProjectIndex,
        table: SiteTable,
    ) -> None:
        self.fn = fn
        self.minfo = minfo
        self.index = index
        self.table = table
        self.locals: dict[str, str] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            typed = resolve_annotation(arg.annotation, minfo, index)
            if typed is not None:
                self.locals[arg.arg] = typed

    def bind_local(self, stmt: ast.stmt) -> None:
        """Record ``x = ClassName(...)`` / annotated local types."""
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            typed = resolve_annotation(stmt.annotation, self.minfo, self.index)
            if typed is not None:
                self.locals[stmt.target.id] = typed
            return
        if not isinstance(stmt, ast.Assign):
            return
        typed = self.type_of(stmt.value) if stmt.value is not None else None
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                if typed is not None:
                    self.locals[target.id] = typed
                else:
                    # A rebind to something untypable clears the old type.
                    self.locals.pop(target.id, None)

    def type_of(self, expr: ast.expr | None) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and self.fn.cls is not None:
                return self.fn.cls
            return self.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.type_of(expr.value)
            if base is not None and base in self.index.classes:
                return self.table.attr_type(self.index, base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            resolved = self.minfo.ctx.resolve(expr.func)
            if resolved is None and isinstance(expr.func, ast.Name):
                resolved = self.minfo.classes.get(expr.func.id)
            if resolved is not None and (
                resolved in self.index.classes or "." in resolved
            ):
                return resolved
            return None
        return None

    def site_of(self, expr: ast.expr) -> LockSite | None:
        if isinstance(expr, ast.Attribute):
            base = self.type_of(expr.value)
            if base is not None and base in self.index.classes:
                return self.table.attr_site(self.index, base, expr.attr)
            return None
        if isinstance(expr, ast.Name):
            return self.table.local_sites.get((self.fn.qualname, expr.id))
        return None

    def call_targets(self, func: ast.expr) -> list[str]:
        """Project functions a call may dispatch to — typed only, no
        name fallback (an unknown receiver yields nothing)."""
        if isinstance(func, ast.Name):
            if func.id in self.fn.nested:
                return [self.fn.nested[func.id]]
            parent = (
                self.index.functions.get(self.fn.parent)
                if self.fn.parent
                else None
            )
            while parent is not None:
                if func.id in parent.nested:
                    return [parent.nested[func.id]]
                parent = (
                    self.index.functions.get(parent.parent)
                    if parent.parent
                    else None
                )
            if func.id in self.minfo.functions:
                return [self.minfo.functions[func.id]]
            if func.id in self.minfo.classes:
                return self._class_init(self.minfo.classes[func.id])
            imported = self.minfo.ctx.imports.get(func.id)
            if imported is not None:
                return self._dotted(imported)
            return []
        if not isinstance(func, ast.Attribute):
            return []
        receiver_type = self.type_of(func.value)
        if receiver_type is not None and receiver_type in self.index.classes:
            targets = []
            for member in self.index.class_family(receiver_type):
                method = self.index.classes[member].methods.get(func.attr)
                if method is not None:
                    targets.append(method)
            return targets
        resolved = self.minfo.ctx.resolve(func)
        if resolved is not None:
            return self._dotted(resolved)
        return []

    def _dotted(self, dotted: str) -> list[str]:
        if dotted in self.index.functions:
            return [dotted]
        if dotted in self.index.classes:
            return self._class_init(dotted)
        return []

    def _class_init(self, class_qualname: str) -> list[str]:
        for candidate in [class_qualname, *self.index.ancestors(class_qualname)]:
            info = self.index.classes.get(candidate)
            if info is not None and "__init__" in info.methods:
                return [info.methods["__init__"]]
        return []

    def blocking_desc(self, call: ast.Call) -> str | None:
        """Why this call blocks the thread, or ``None``."""
        func = call.func
        resolved = self.minfo.ctx.resolve(func)
        if resolved in BLOCKING_CALLS:
            return BLOCKING_CALLS[resolved]
        if (
            isinstance(func, ast.Name)
            and func.id == "open"
            and func.id not in self.minfo.ctx.imports
            and func.id not in self.minfo.functions
        ):
            return "file I/O (open)"
        if isinstance(func, ast.Attribute):
            receiver_type = self.type_of(func.value)
            methods = BLOCKING_METHODS.get(receiver_type or "")
            if methods and func.attr in methods:
                return methods[func.attr]
        return None


# ----------------------------------------------------------------------
# Per-function walk


class _Walker:
    def __init__(self, resolver: _Resolver) -> None:
        self.r = resolver
        self.summary = FunctionSummary(fn=resolver.fn)
        self.held: list[str] = []
        #: Innermost-last context markers: ``"while"``, ``"loop"`` or
        #: ``"with:<site>"`` — LOCK005's predicate-loop test.
        self.context: list[str] = []

    # -- statements ---------------------------------------------------

    def walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # separate analysis units
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt)
            return
        if isinstance(stmt, ast.While):
            self.visit_expr(stmt.test)
            self.context.append("while")
            self.walk_body(stmt.body)
            self.context.pop()
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_expr(stmt.iter)
            self.context.append("loop")
            self.walk_body(stmt.body)
            self.context.pop()
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self.visit_expr(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
            return
        # Leaf statement: visit expressions, then record local types.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                self.visit_expr(node)
        self.r.bind_local(stmt)

    def _walk_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        entered: list[str] = []
        for item in stmt.items:
            site = self.r.site_of(item.context_expr)
            if site is not None and site.mutex:
                self._record_acquire(site, item.context_expr.lineno)
                self.held.append(site.name)
                self.context.append(f"with:{site.name}")
                entered.append(site.name)
            else:
                self.visit_expr(item.context_expr)
        self.walk_body(stmt.body)
        for _ in entered:
            self.held.pop()
            self.context.pop()

    def _record_acquire(self, site: LockSite, lineno: int) -> None:
        if site.reentrant and site.name in self.held:
            return  # re-entering an RLock is its contract
        self.summary.acquires.append((site.name, lineno, tuple(self.held)))

    # -- expressions --------------------------------------------------

    def visit_expr(self, expr: ast.expr) -> None:
        """Scan an expression tree for calls, skipping nested defs."""
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, ast.Call):
                self._visit_call(node)
            stack.extend(ast.iter_child_nodes(node))

    def _visit_call(self, call: ast.Call) -> None:
        held = tuple(self.held)
        func = call.func
        if isinstance(func, ast.Attribute):
            site = self.r.site_of(func.value)
            if site is not None:
                if func.attr == "acquire":
                    self.summary.acquire_calls.append((site.name, call.lineno))
                    if site.mutex:
                        self._record_acquire(site, call.lineno)
                    elif held:
                        self.summary.blocking.append(
                            (call.lineno, held, f"{site.kind}.acquire ({site.name})")
                        )
                    return
                if func.attr == "release":
                    return
                if site.kind == "Condition" and func.attr == "wait":
                    self.summary.waits.append(
                        (site.name, call.lineno, self._wait_in_loop(site.name))
                    )
                    return
        desc = self.r.blocking_desc(call)
        if desc is not None:
            self.summary.blocking.append((call.lineno, held, desc))
            return
        targets = tuple(sorted(self.r.call_targets(func)))
        if targets:
            self.summary.calls.append((call.lineno, held, targets))

    def _wait_in_loop(self, site: str) -> bool:
        """Whether a ``wait`` on ``site`` sits inside a ``while`` that is
        itself inside the ``with site:`` block (the predicate-loop shape)."""
        marker = f"with:{site}"
        for entry in reversed(self.context):
            if entry == "while":
                return True
            if entry == marker:
                return False
        return False


def summarize_function(
    fn: FunctionInfo,
    minfo: ModuleInfo,
    index: ProjectIndex,
    table: SiteTable,
) -> FunctionSummary:
    resolver = _Resolver(fn, minfo, index, table)
    walker = _Walker(resolver)
    walker.walk_body(fn.node.body)
    return walker.summary


# ----------------------------------------------------------------------
# LOCK004 guard matching


def acquire_guarded(
    fn: FunctionInfo, resolver_site: str, lineno: int, table: SiteTable,
    minfo: ModuleInfo, index: ProjectIndex,
) -> bool:
    """Whether the ``.acquire()`` at ``lineno`` has a guaranteed release.

    Guarded means: the acquire sits inside a ``try`` whose ``finally``
    (or an ``except`` handler) releases the same site, or a *later
    sibling* statement — at the acquire's nesting level or any enclosing
    level — is such a ``try``.  That second form covers the handoff
    pattern, where the acquiring function releases only on the failure
    path and a downstream owner releases on success.
    """
    resolver = _Resolver(fn, minfo, index, table)

    def releases(subtree: ast.AST) -> bool:
        for node in ast.walk(subtree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "release"
            ):
                site = resolver.site_of(node.func.value)
                if site is not None and site.name == resolver_site:
                    return True
        return False

    def try_guards(node: ast.Try) -> bool:
        for block in [node.finalbody, *[h.body for h in node.handlers]]:
            for stmt in block:
                if releases(stmt):
                    return True
        return False

    # Chain of statements from the function body down to the acquire.
    def chain_to(body: list[ast.stmt]) -> list[tuple[list[ast.stmt], int]] | None:
        for position, stmt in enumerate(body):
            if stmt.lineno <= lineno <= (stmt.end_lineno or stmt.lineno):
                found = [(body, position)]
                for child_body in _stmt_bodies(stmt):
                    deeper = chain_to(child_body)
                    if deeper is not None:
                        return found + deeper
                return found
        return None

    chain = chain_to(fn.node.body)
    if chain is None:
        return False
    for body, position in chain:
        stmt = body[position]
        if isinstance(stmt, ast.Try) and try_guards(stmt):
            return True
        for later in body[position + 1 :]:
            if isinstance(later, ast.Try) and try_guards(later):
                return True
    return False


def _stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []):
        bodies.append(handler.body)
    return bodies


# ----------------------------------------------------------------------
# The whole-program graph


class LockGraph:
    """Sites, summaries, acquired-while-held edges, and the hierarchy."""

    def __init__(self, index: ProjectIndex, table: SiteTable) -> None:
        self.index = index
        self.table = table
        self.summaries: dict[str, FunctionSummary] = {}
        #: (outer, inner) -> first-seen Edge (deterministic).
        self.edges: dict[tuple[str, str], Edge] = {}
        #: fn qualname -> site -> provenance chain.
        self.acquires_star: dict[str, dict[str, str]] = {}
        #: fn qualname -> blocking description -> provenance chain.
        self.blocked_star: dict[str, dict[str, str]] = {}

    # -- construction -------------------------------------------------

    def compute(self) -> None:
        self._fixpoint_acquires()
        self._fixpoint_blocked()
        self._build_edges()

    def _fixpoint_acquires(self) -> None:
        star = self.acquires_star
        for qualname in sorted(self.summaries):
            summary = self.summaries[qualname]
            own: dict[str, str] = {}
            path = self.index.modules[summary.fn.module].path
            for site, line, _held in summary.acquires:
                own.setdefault(site, f"{path}:{line} acquires {site}")
            star[qualname] = own
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.summaries):
                summary = self.summaries[qualname]
                own = star[qualname]
                for line, _held, targets in summary.calls:
                    for target in targets:
                        for site, chain in sorted(star.get(target, {}).items()):
                            if site not in own:
                                own[site] = f"{qualname}:{line} -> {chain}"
                                changed = True

    def _fixpoint_blocked(self) -> None:
        star = self.blocked_star
        for qualname in sorted(self.summaries):
            summary = self.summaries[qualname]
            own: dict[str, str] = {}
            path = self.index.modules[summary.fn.module].path
            for line, _held, desc in summary.blocking:
                own.setdefault(desc, f"{desc} at {path}:{line}")
            star[qualname] = own
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.summaries):
                summary = self.summaries[qualname]
                own = star[qualname]
                for line, _held, targets in summary.calls:
                    for target in targets:
                        for desc, chain in sorted(star.get(target, {}).items()):
                            if desc not in own:
                                own[desc] = f"{qualname}:{line} -> {chain}"
                                changed = True

    def _add_edge(
        self, outer: str, inner: str, path: str, line: int, via: str
    ) -> None:
        self.edges.setdefault(
            (outer, inner), Edge(outer, inner, path, line, via)
        )

    def _build_edges(self) -> None:
        for qualname in sorted(self.summaries):
            summary = self.summaries[qualname]
            path = self.index.modules[summary.fn.module].path
            for site, line, held in summary.acquires:
                for outer in held:
                    self._add_edge(
                        outer, site, path, line,
                        f"{qualname} acquires {site} while holding {outer}",
                    )
            for line, held, targets in summary.calls:
                if not held:
                    continue
                for target in targets:
                    for site, chain in sorted(
                        self.acquires_star.get(target, {}).items()
                    ):
                        for outer in held:
                            self._add_edge(
                                outer, site, path, line,
                                f"{qualname} holds {outer}; {chain}",
                            )

    # -- queries ------------------------------------------------------

    def mutex_edges(self) -> list[Edge]:
        """Order-relevant edges: mutex endpoints, self-loops excluded."""
        edges = []
        for (outer, inner), edge in sorted(self.edges.items()):
            if outer == inner:
                continue
            outer_site = self.table.sites.get(outer)
            inner_site = self.table.sites.get(inner)
            if outer_site is None or inner_site is None:
                continue
            if outer_site.mutex and inner_site.mutex:
                edges.append(edge)
        return edges

    def self_edges(self) -> list[Edge]:
        return [
            edge
            for (outer, inner), edge in sorted(self.edges.items())
            if outer == inner
        ]

    def hierarchy(self) -> list[str]:
        """Topological order over the mutex *attribute* sites.

        Kahn's algorithm with alphabetical tie-breaking, so the order is
        total and deterministic even where the edge set leaves freedom.
        Sites stuck in a cycle (a LOCK001 finding) are appended
        alphabetically so the dump stays complete.
        """
        nodes = sorted(
            name
            for name, site in self.table.sites.items()
            if site.mutex and site.scope == "attr"
        )
        indegree = {name: 0 for name in nodes}
        outgoing: dict[str, list[str]] = {name: [] for name in nodes}
        for edge in self.mutex_edges():
            if edge.outer in indegree and edge.inner in indegree:
                outgoing[edge.outer].append(edge.inner)
                indegree[edge.inner] += 1
        order: list[str] = []
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        while ready:
            current = ready.pop(0)
            order.append(current)
            for nxt in sorted(outgoing[current]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0 and nxt not in order and nxt not in ready:
                    ready.append(nxt)
            ready.sort()
        for name in nodes:
            if name not in order:
                order.append(name)
        return order

    def find_path(self, start: str, goal: str) -> list[Edge] | None:
        """Deterministic shortest edge path ``start -> ... -> goal``
        over the mutex edge set (BFS, sorted expansion)."""
        adjacency: dict[str, list[Edge]] = {}
        for edge in self.mutex_edges():
            adjacency.setdefault(edge.outer, []).append(edge)
        frontier: list[tuple[str, list[Edge]]] = [(start, [])]
        seen = {start}
        while frontier:
            current, trail = frontier.pop(0)
            for edge in adjacency.get(current, ()):
                if edge.inner == goal:
                    return trail + [edge]
                if edge.inner not in seen:
                    seen.add(edge.inner)
                    frontier.append((edge.inner, trail + [edge]))
        return None

    # -- dump ---------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "sites": [
                self.table.sites[name].to_dict()
                for name in sorted(self.table.sites)
            ],
            "edges": [
                {
                    "outer": edge.outer,
                    "inner": edge.inner,
                    "at": f"{edge.path}:{edge.line}",
                    "via": edge.via,
                }
                for edge in (
                    self.edges[key] for key in sorted(self.edges)
                )
            ],
            "hierarchy": self.hierarchy(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def build_lockgraph(
    index: ProjectIndex,
    table: SiteTable,
    exempt_modules: tuple[str, ...] = (),
) -> LockGraph:
    """Summarize every (non-exempt) function and close the graph."""
    graph = LockGraph(index, table)
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        if any(
            fn.module == prefix or fn.module.startswith(prefix + ".")
            for prefix in exempt_modules
        ):
            continue
        minfo = index.modules[fn.module]
        graph.summaries[qualname] = summarize_function(fn, minfo, index, table)
    graph.compute()
    return graph
