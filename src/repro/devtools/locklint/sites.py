"""Lock-site discovery and the attribute/local type tables.

A **lock site** is a synchronization primitive with a stable identity
the analysis can name:

* an *attribute site* — ``self._lock = threading.Lock()`` (or the
  :func:`repro.lockorder.witness_lock` wrapper) assigned in a class's
  ``__init__``, named ``Class._attr``;
* a *local site* — ``admission = threading.BoundedSemaphore(n)`` bound
  to a function local, named ``module.func.name``.

Alongside the sites, this module builds the **type tables** the rest of
locklint resolves receivers through: per-class ``attr -> type`` (from
``self.x = ClassName()``, annotated ``self.x: T`` assignments with
``T | None``/``Optional[T]`` unwrapped, and annotated ``__init__``
parameters stored on ``self``) and per-function ``local -> type``.
Typed resolution is deliberately *under*-approximate — an unknown
receiver contributes nothing.  conclint's name-based CHA fallback would
be poison here: ``self._cache.get(...)`` on a plain dict must not
"dispatch" to ``BoundedCache.get`` and conjure a lock acquisition that
never happens.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.devtools.conclint.symbols import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    iter_own_nodes,
)

__all__ = ["LockSite", "SiteTable", "build_sites"]

#: Lock-ish constructors -> (kind, reentrant).  Event is *not* a lock
#: site — it is tracked as a typed attribute for LOCK002's blocking-call
#: detection instead.
LOCK_CTORS = {
    "threading.Lock": ("Lock", False),
    "threading.RLock": ("RLock", True),
    "threading.Semaphore": ("Semaphore", False),
    "threading.BoundedSemaphore": ("BoundedSemaphore", False),
    "threading.Condition": ("Condition", False),
}

#: The runtime witness wrapper; its product is a (non-reentrant) Lock.
WITNESS_CTORS = frozenset({"repro.lockorder.witness_lock"})

#: Kinds that provide mutual exclusion — these enter the held set and
#: the lock-order graph.  Counting semaphores do not: holding a permit
#: while taking locks is the admission-control pattern, not a deadlock
#: order.  They still get LOCK004 acquire/release pairing checks.
MUTEX_KINDS = frozenset({"Lock", "RLock", "Condition"})


@dataclass(frozen=True)
class LockSite:
    """One named synchronization primitive."""

    name: str
    kind: str
    reentrant: bool
    #: ``"attr"`` or ``"local"``.
    scope: str
    #: Class qualname for attr sites, function qualname for local sites.
    owner: str
    #: The attribute or local binding name.
    binding: str
    path: str
    lineno: int

    @property
    def mutex(self) -> bool:
        return self.kind in MUTEX_KINDS

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "reentrant": self.reentrant,
            "scope": self.scope,
            "owner": self.owner,
            "path": self.path,
            "line": self.lineno,
        }


@dataclass
class SiteTable:
    """Every discovered site plus the receiver-typing tables."""

    #: site name -> site.
    sites: dict[str, LockSite] = field(default_factory=dict)
    #: (class qualname, attr) -> site.
    attr_sites: dict[tuple[str, str], LockSite] = field(default_factory=dict)
    #: (function qualname, local name) -> site.
    local_sites: dict[tuple[str, str], LockSite] = field(default_factory=dict)
    #: class qualname -> attr name -> type (project class qualname or a
    #: dotted external name like ``threading.Event``).
    attr_types: dict[str, dict[str, str]] = field(default_factory=dict)
    #: witness sites whose declared string disagrees with the computed
    #: ``Class._attr`` name: (declared, computed, path, line).
    mismatched: list[tuple[str, str, str, int]] = field(default_factory=list)

    def attr_site(
        self, index: ProjectIndex, cls: str, attr: str
    ) -> LockSite | None:
        """The site ``self.<attr>`` names in class ``cls``, honouring
        inheritance (a subclass method locks its base's site)."""
        for candidate in [cls, *index.ancestors(cls)]:
            site = self.attr_sites.get((candidate, attr))
            if site is not None:
                return site
        return None

    def attr_type(self, index: ProjectIndex, cls: str, attr: str) -> str | None:
        for candidate in [cls, *index.ancestors(cls)]:
            typed = self.attr_types.get(candidate, {}).get(attr)
            if typed is not None:
                return typed
        return None


def resolve_annotation(
    node: ast.expr | None, minfo: ModuleInfo, index: ProjectIndex
) -> str | None:
    """A type annotation's dotted name, unwrapping ``T | None`` and
    ``Optional[T]``; ``None`` when the annotation names no single type."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = resolve_annotation(node.left, minfo, index)
        if left is not None:
            return left
        return resolve_annotation(node.right, minfo, index)
    if isinstance(node, ast.Subscript):
        base = resolve_annotation(node.value, minfo, index)
        if base in ("typing.Optional", "Optional"):
            return resolve_annotation(node.slice, minfo, index)
        return None
    if isinstance(node, ast.Name):
        if node.id == "None":
            return None
        local = minfo.classes.get(node.id)
        if local is not None:
            return local
        return minfo.ctx.imports.get(node.id, node.id)
    if isinstance(node, ast.Attribute):
        return minfo.ctx.resolve(node)
    if isinstance(node, ast.Constant) and node.value is None:
        return None
    return None


def _ctor_of(call: ast.Call, minfo: ModuleInfo) -> str | None:
    """The canonical dotted constructor a call invokes, best effort."""
    resolved = minfo.ctx.resolve(call.func)
    if resolved is not None:
        return resolved
    if isinstance(call.func, ast.Name):
        local_cls = minfo.classes.get(call.func.id)
        if local_cls is not None:
            return local_cls
        return call.func.id
    return None


def _value_type(
    value: ast.expr | None, minfo: ModuleInfo, index: ProjectIndex
) -> str | None:
    """The type an assignment's right-hand side constructs, if evident."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        ctor = _ctor_of(value, minfo)
        if ctor is not None and (ctor in index.classes or "." in ctor):
            return ctor
    return None


def _self_attr(target: ast.expr) -> str | None:
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _witness_site_name(call: ast.Call) -> str | None:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


def build_sites(index: ProjectIndex) -> SiteTable:
    """Discover every lock site and type table across the project."""
    table = SiteTable()
    for class_qualname in sorted(index.classes):
        _scan_class(index, table, class_qualname)
    for fn_qualname in sorted(index.functions):
        _scan_locals(index, table, index.functions[fn_qualname])
    return table


def _scan_class(
    index: ProjectIndex, table: SiteTable, class_qualname: str
) -> None:
    cinfo = index.classes[class_qualname]
    minfo = index.modules[cinfo.module]
    types = table.attr_types.setdefault(class_qualname, {})

    # Class-level annotations (``clock: SimClock``) type attributes too.
    for stmt in cinfo.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            typed = resolve_annotation(stmt.annotation, minfo, index)
            if typed is not None:
                types.setdefault(stmt.target.id, typed)

    init_qualname = cinfo.methods.get("__init__")
    init = index.functions.get(init_qualname) if init_qualname else None
    if init is None:
        return

    #: Annotated __init__ parameters, so ``self._clock = clock`` below
    #: inherits the parameter's declared type.
    param_types: dict[str, str] = {}
    args = init.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        typed = resolve_annotation(arg.annotation, minfo, index)
        if typed is not None:
            param_types[arg.arg] = typed

    for node in iter_own_nodes(init.node):
        if isinstance(node, ast.AnnAssign):
            attr = _self_attr(node.target)
            if attr is not None:
                typed = resolve_annotation(node.annotation, minfo, index)
                if typed is not None:
                    types.setdefault(attr, typed)
            targets: list[ast.expr] = [node.target]
            value = node.value
        elif isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            site = _site_from_value(
                value, minfo, owner=class_qualname, binding=attr,
                name=f"{cinfo.name}.{attr}", table=table,
            )
            if site is not None:
                table.sites[site.name] = site
                table.attr_sites[(class_qualname, attr)] = site
                continue
            if isinstance(value, ast.Name) and value.id in param_types:
                types.setdefault(attr, param_types[value.id])
                continue
            typed = _value_type(value, minfo, index)
            if typed is not None:
                types.setdefault(attr, typed)


def _site_from_value(
    value: ast.expr | None,
    minfo: ModuleInfo,
    owner: str,
    binding: str,
    name: str,
    table: SiteTable,
) -> LockSite | None:
    if not isinstance(value, ast.Call):
        return None
    ctor = _ctor_of(value, minfo)
    if ctor in LOCK_CTORS:
        kind, reentrant = LOCK_CTORS[ctor]
    elif ctor in WITNESS_CTORS or (
        isinstance(value.func, ast.Name) and value.func.id == "witness_lock"
    ):
        kind, reentrant = "Lock", False
        declared = _witness_site_name(value)
        if declared is not None and declared != name:
            table.mismatched.append(
                (declared, name, minfo.path, value.lineno)
            )
    else:
        return None
    return LockSite(
        name=name,
        kind=kind,
        reentrant=reentrant,
        scope="attr",
        owner=owner,
        binding=binding,
        path=minfo.path,
        lineno=value.lineno,
    )


def _scan_locals(
    index: ProjectIndex, table: SiteTable, fn: FunctionInfo
) -> None:
    minfo = index.modules[fn.module]
    for node in iter_own_nodes(fn.node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        ctor = _ctor_of(node.value, minfo)
        if ctor not in LOCK_CTORS:
            continue
        kind, reentrant = LOCK_CTORS[ctor]
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            name = f"{fn.qualname}.{target.id}"
            site = LockSite(
                name=name,
                kind=kind,
                reentrant=reentrant,
                scope="local",
                owner=fn.qualname,
                binding=target.id,
                path=minfo.path,
                lineno=node.lineno,
            )
            table.sites[name] = site
            table.local_sites[(fn.qualname, target.id)] = site
