"""locklint — lock-discipline and blocking-hazard analysis.

PR 6 gave the repo a serving tier: one process, a thread pool, and a
dozen lock sites shared across the cache, single-flight, resilience and
stats layers.  locklint machine-checks the locking discipline that
makes the tier hang-free.  It reuses conclint's project-wide symbol
table, discovers every **lock site** (a ``threading`` primitive — or
its :func:`repro.lockorder.witness_lock` wrapper — assigned in an
``__init__``, named ``Class._attr``), computes the set of sites held at
every call edge, and enforces:

=======  ==========================================================
LOCK001  lock-order cycle: two sites acquired in both orders on
         different interprocedural paths
LOCK002  blocking call (Event.wait, Future.result, Queue.get/put,
         sleep, subprocess/file I/O, Semaphore.acquire) reachable
         while a lock is held
LOCK003  re-entrant acquisition of a non-reentrant site
         (self-deadlock)
LOCK004  bare ``.acquire()`` without a guaranteed ``.release()`` on
         exception paths
LOCK005  ``Condition.wait`` outside a ``while predicate:`` loop
=======  ==========================================================

Receiver resolution is strictly typed — unlike conclint's deliberately
over-approximate reachability, a lock analyzer that guesses receivers
reports phantom deadlocks, so unknown receivers contribute nothing and
the runtime witness (:mod:`repro.lockorder`, ``REPRO_LOCK_WITNESS=1``)
covers the dynamic remainder.

Waive a single site with ``# locklint: ignore[LOCK002] -- reason``;
the ``.locklint-baseline.json`` baseline ships **empty** — src/repro
carries no grandfathered lock debt.  Run via ``python -m repro
locklint``; ``--dump-lockgraph`` emits the deterministic site/edge/
hierarchy JSON the analysis ran against.  The findings/pragma/baseline/
reporter machinery lives in :mod:`repro.devtools.common`, shared with
detlint and conclint.
"""

from repro.devtools.common.findings import Finding
from repro.devtools.locklint.lockgraph import (
    FunctionSummary,
    LockGraph,
    build_lockgraph,
)
from repro.devtools.locklint.rules import lock_rule_table, run_rules
from repro.devtools.locklint.runner import (
    EXEMPT_MODULES,
    LockAnalysis,
    analyze_paths,
)
from repro.devtools.locklint.sites import LockSite, SiteTable, build_sites

__all__ = [
    "EXEMPT_MODULES",
    "Finding",
    "FunctionSummary",
    "LockAnalysis",
    "LockGraph",
    "LockSite",
    "SiteTable",
    "analyze_paths",
    "build_lockgraph",
    "build_sites",
    "lock_rule_table",
    "run_rules",
]
