"""The five LOCK rules, evaluated over a :class:`LockGraph`.

Unlike detlint's per-file visitors, every rule here reads the completed
whole-program graph; the functions below turn graph facts into
:class:`~repro.devtools.common.findings.Finding` records anchored at the
source location that best explains each hazard.
"""

from __future__ import annotations

from repro.devtools.common.findings import Finding
from repro.devtools.locklint.lockgraph import LockGraph, acquire_guarded

__all__ = ["RULES", "lock_rule_table", "run_rules"]

RULES = (
    (
        "LOCK001",
        "lock-order cycle",
        "two lock sites are acquired in both orders on different paths "
        "(deadlock on an adversarial schedule)",
    ),
    (
        "LOCK002",
        "blocking call under lock",
        "a blocking operation (Event.wait, Future.result, Queue.get/put, "
        "sleep, subprocess/file I/O, Semaphore.acquire) is reachable "
        "while a lock is held",
    ),
    (
        "LOCK003",
        "re-entrant acquisition",
        "a non-reentrant lock site can be re-acquired while already held "
        "(self-deadlock)",
    ),
    (
        "LOCK004",
        "unbalanced acquire",
        "a bare .acquire() without a guaranteed .release() on exception "
        "paths (use `with`, or try/finally)",
    ),
    (
        "LOCK005",
        "wait outside predicate loop",
        "Condition.wait not wrapped in a `while predicate:` loop "
        "(spurious wakeups break the invariant)",
    ),
)


def lock_rule_table() -> list[tuple[str, str, str]]:
    return [(code, title, summary) for code, title, summary in RULES]


def _finding(
    graph: LockGraph, path: str, line: int, rule: str, message: str
) -> Finding:
    minfo = next(
        (m for m in graph.index.modules.values() if m.path == path), None
    )
    snippet = minfo.ctx.snippet(line) if minfo is not None else ""
    return Finding(
        path=path,
        line=line,
        col=0,
        rule=rule,
        message=message,
        snippet=snippet,
        end_line=line,
        stmt_line=line,
    )


def run_rules(graph: LockGraph) -> list[Finding]:
    findings: list[Finding] = []
    findings.extend(_lock001(graph))
    findings.extend(_lock002(graph))
    findings.extend(_lock003(graph))
    findings.extend(_lock004(graph))
    findings.extend(_lock005(graph))
    findings.sort()
    return findings


# ----------------------------------------------------------------------


def _lock001(graph: LockGraph) -> list[Finding]:
    """Every unordered site pair acquired in both orders, once each."""
    findings = []
    reported: set[tuple[str, str]] = set()
    for edge in graph.mutex_edges():
        pair = tuple(sorted((edge.outer, edge.inner)))
        if pair in reported:
            continue
        back = graph.find_path(edge.inner, edge.outer)
        if back is None:
            continue
        reported.add(pair)
        back_desc = "; ".join(
            f"{step.via} ({step.path}:{step.line})" for step in back
        )
        findings.append(
            _finding(
                graph,
                edge.path,
                edge.line,
                "LOCK001",
                f"lock-order cycle between {edge.outer} and {edge.inner}: "
                f"this path acquires {edge.inner} while holding "
                f"{edge.outer} [{edge.via}], but the reverse order also "
                f"occurs [{back_desc}]",
            )
        )
    return findings


def _lock002(graph: LockGraph) -> list[Finding]:
    findings = []
    for qualname in sorted(graph.summaries):
        summary = graph.summaries[qualname]
        path = graph.index.modules[summary.fn.module].path
        for line, held, desc in summary.blocking:
            if not held:
                continue
            findings.append(
                _finding(
                    graph, path, line, "LOCK002",
                    f"blocking operation ({desc}) while holding "
                    f"{', '.join(held)}",
                )
            )
        for line, held, targets in summary.calls:
            if not held:
                continue
            for target in targets:
                blocked = graph.blocked_star.get(target, {})
                for desc in sorted(blocked):
                    findings.append(
                        _finding(
                            graph, path, line, "LOCK002",
                            f"call to {target} can block ({desc}) while "
                            f"holding {', '.join(held)} "
                            f"[{blocked[desc]}]",
                        )
                    )
    return findings


def _lock003(graph: LockGraph) -> list[Finding]:
    findings = []
    for edge in graph.self_edges():
        site = graph.table.sites.get(edge.outer)
        if site is None or site.reentrant:
            continue
        findings.append(
            _finding(
                graph, edge.path, edge.line, "LOCK003",
                f"re-entrant acquisition of non-reentrant site "
                f"{site.name} (self-deadlock): {edge.via}",
            )
        )
    return findings


def _lock004(graph: LockGraph) -> list[Finding]:
    findings = []
    for qualname in sorted(graph.summaries):
        summary = graph.summaries[qualname]
        fn = summary.fn
        minfo = graph.index.modules[fn.module]
        for site_name, line in summary.acquire_calls:
            if acquire_guarded(
                fn, site_name, line, graph.table, minfo, graph.index
            ):
                continue
            findings.append(
                _finding(
                    graph, minfo.path, line, "LOCK004",
                    f"bare {site_name}.acquire() without a guaranteed "
                    f"release on exception paths — use `with`, or "
                    f"try/finally (or release in an except handler for "
                    f"handoff patterns)",
                )
            )
    return findings


def _lock005(graph: LockGraph) -> list[Finding]:
    findings = []
    for qualname in sorted(graph.summaries):
        summary = graph.summaries[qualname]
        path = graph.index.modules[summary.fn.module].path
        for site_name, line, in_loop in summary.waits:
            if in_loop:
                continue
            findings.append(
                _finding(
                    graph, path, line, "LOCK005",
                    f"{site_name}.wait() outside a `while predicate:` "
                    f"loop — spurious wakeups and stolen signals break "
                    f"the waited-for invariant",
                )
            )
    return findings
