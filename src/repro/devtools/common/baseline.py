"""The grandfathered-findings baseline.

A checked-in JSON file records known findings that predate a rule (or
are intentionally exempt at file scope).  Baselined findings are
reported as warnings; anything *not* in the baseline fails the run, so
the repository can only ratchet toward zero.

Entries match on ``(path, rule, snippet)`` — not line numbers — so
edits elsewhere in a file do not invalidate them, and each entry
carries a mandatory human-readable ``reason``.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import replace
from pathlib import Path

from repro.devtools.common.findings import Finding

__all__ = ["apply_baseline", "existing_reasons", "load_baseline", "write_baseline"]

_VERSION = 1


def normalized_key(finding: Finding, base_dir: Path | str | None) -> str:
    """Baseline key with the path made relative to the baseline file's dir.

    Entries stay portable across checkouts and across invocations that
    pass absolute vs. relative lint paths.
    """
    path = finding.path
    if base_dir is not None:
        try:
            path = os.path.relpath(path, base_dir)
        except ValueError:
            pass
    path = path.replace(os.sep, "/")
    return f"{path}::{finding.rule}::{finding.snippet}"


def load_baseline(path: Path | str | None) -> dict[str, int]:
    """Baseline keys -> allowed occurrence counts (empty if no file)."""
    if path is None:
        return {}
    path = Path(path)
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    allowance: dict[str, int] = {}
    for entry in data.get("entries", []):
        key = f"{entry['path']}::{entry['rule']}::{entry['snippet']}"
        allowance[key] = allowance.get(key, 0) + int(entry.get("count", 1))
    return allowance


def apply_baseline(
    findings: list[Finding],
    allowance: dict[str, int],
    base_dir: Path | str | None = None,
) -> list[Finding]:
    """Mark findings covered by the baseline, consuming allowance in order.

    Findings arrive sorted by location, so when a file has more
    occurrences of a grandfathered pattern than the baseline allows, the
    *later* ones (most likely the newly introduced ones) stay blocking.
    """
    remaining = dict(allowance)
    marked = []
    for finding in findings:
        key = normalized_key(finding, base_dir)
        if not finding.waived and remaining.get(key, 0) > 0:
            remaining[key] -= 1
            finding = replace(finding, baselined=True)
        marked.append(finding)
    return marked


def write_baseline(
    findings: list[Finding],
    path: Path | str,
    reasons: dict[str, str] | None = None,
) -> None:
    """Write every non-waived finding as a grandfathered entry.

    ``reasons`` maps baseline keys to explanations; entries without one
    get a placeholder so reviewers can spot undocumented grandfathering.
    """
    reasons = reasons or {}
    base_dir = Path(path).resolve().parent
    counts = Counter(
        normalized_key(f, base_dir) for f in findings if not f.waived
    )
    entries = []
    for key in sorted(counts):
        file_path, rule, snippet = key.split("::", 2)
        entries.append(
            {
                "path": file_path,
                "rule": rule,
                "snippet": snippet,
                "count": counts[key],
                "reason": reasons.get(key, "TODO: document why this is grandfathered"),
            }
        )
    payload = {"version": _VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def existing_reasons(path: Path | str | None) -> dict[str, str]:
    """Reasons from the current baseline file, keyed like findings."""
    if path is None or not Path(path).exists():
        return {}
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    reasons = {}
    for entry in data.get("entries", []):
        key = f"{entry['path']}::{entry['rule']}::{entry['snippet']}"
        if entry.get("reason"):
            reasons[key] = entry["reason"]
    return reasons
