"""Text and JSON rendering of a :class:`LintReport`."""

from __future__ import annotations

import json

from repro.devtools.common.report import LintReport

__all__ = ["render_json", "render_text"]


def _status(finding) -> str:
    if finding.waived:
        return " (waived)"
    if finding.baselined:
        return " (baselined)"
    return ""


def render_text(
    report: LintReport, *, verbose: bool = False, tool: str = "detlint"
) -> str:
    """Human-readable report: one line per finding plus a summary.

    Waived findings are hidden unless ``verbose``; baselined ones are
    always shown (they are debt, and debt should stay visible).
    ``tool`` labels the summary line with the analyzer's name.
    """
    lines = []
    for finding in report.findings:
        if finding.waived and not verbose:
            continue
        lines.append(
            f"{finding.location()}: {finding.rule} {finding.message}{_status(finding)}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    s = report.summary()
    lines.append(
        f"{tool}: {s['files']} files, {s['findings']} findings "
        f"({s['blocking']} blocking, {s['baselined']} baselined, "
        f"{s['waived']} waived)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "summary": report.summary(),
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
