"""The report container and file discovery every analyzer shares."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.common.findings import Finding

__all__ = ["DEFAULT_PATHS", "LintReport", "iter_python_files"]

#: The library tree the correctness contracts cover.  ``tools/`` and
#: ``benchmarks/`` are operator-facing (timing is their job) and are
#: deliberately outside the default scope.
DEFAULT_PATHS = ("src/repro",)


@dataclass
class LintReport:
    """All findings from one analyzer run, sorted by location."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def blocking(self) -> list[Finding]:
        return [f for f in self.findings if f.blocking]

    @property
    def waived(self) -> list[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.blocking else 0

    def summary(self) -> dict[str, int]:
        return {
            "files": self.files_checked,
            "findings": len(self.findings),
            "blocking": len(self.blocking),
            "waived": len(self.waived),
            "baselined": len(self.baselined),
        }


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Every ``.py`` file under the given paths, sorted for determinism."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)
