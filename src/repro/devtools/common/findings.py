"""The :class:`Finding` record every in-house analyzer produces.

detlint, conclint and locklint all report through this one dataclass so
the pragma, baseline and reporter machinery in
:mod:`repro.devtools.common` works identically for the three tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Findings sort by location so reports (and the baseline file) are
    stable across runs regardless of rule execution order — the linters
    hold themselves to the determinism contract they enforce.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    #: The stripped source line, used both for display and as the
    #: line-number-independent identity that baseline entries match on.
    snippet: str = field(default="", compare=False)
    #: Last physical line of the flagged expression (pragmas anywhere in
    #: the statement's line range waive it).
    end_line: int = field(default=0, compare=False)
    #: First physical line of the enclosing *statement*.  A violation
    #: deep inside a multi-line statement is reported at its own line,
    #: but the natural place for the waiver comment is the line the
    #: statement starts on — pragma lookup honours both anchors.
    stmt_line: int = field(default=0, compare=False)
    #: Suppressed by an inline ``# <tool>: ignore[...]`` pragma.
    waived: bool = field(default=False, compare=False)
    #: Grandfathered by the checked-in baseline file.
    baselined: bool = field(default=False, compare=False)

    @property
    def blocking(self) -> bool:
        """Whether this finding should fail the lint run."""
        return not (self.waived or self.baselined)

    def key(self) -> str:
        """Line-number-independent identity used by the baseline.

        Keyed on (path, rule, snippet) rather than the line number so
        unrelated edits above a grandfathered site do not invalidate it.
        """
        return f"{self.path}::{self.rule}::{self.snippet}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
            "waived": self.waived,
            "baselined": self.baselined,
        }
