"""Machinery shared by the in-house analyzers (detlint, conclint,
locklint, cachelint).

Extracted from detlint once conclint started borrowing it "via a tool
parameter"; with locklint the count reached three consumers, so the
shared pieces now live here as one implementation:

* :mod:`~repro.devtools.common.findings` — the :class:`Finding` record
  every rule produces;
* :mod:`~repro.devtools.common.pragmas` — ``# <tool>: ignore[...]`` /
  ``skip-file`` waiver parsing, parameterized by tool name;
* :mod:`~repro.devtools.common.baseline` — the grandfathered-findings
  JSON baseline with mandatory reasons;
* :mod:`~repro.devtools.common.report` — :class:`LintReport` and
  deterministic file discovery;
* :mod:`~repro.devtools.common.reporters` — text and JSON rendering;
* :mod:`~repro.devtools.common.sarif` — SARIF 2.1.0 rendering for CI
  and editor ingestion, one mapping for all four tools;
* :mod:`~repro.devtools.common.context` — per-module import-alias
  resolution (:class:`ModuleContext`);
* :mod:`~repro.devtools.common.cli` — the shared subcommand skeleton
  (``--format/--baseline/--update-baseline/--list-rules`` + per-tool
  dump flags) and the :data:`~repro.devtools.common.cli.TOOL_COMMANDS`
  registry that puts every analyzer on the ``python -m repro`` surface.

Tool-specific rule engines stay in their own packages; nothing here
knows any rule code.
"""

from repro.devtools.common.baseline import (
    apply_baseline,
    existing_reasons,
    load_baseline,
    write_baseline,
)
from repro.devtools.common.cli import (
    TOOL_COMMANDS,
    DumpOption,
    ToolCLI,
    ToolCommand,
    configure_parser,
    register_tool_parsers,
    run_tool,
    run_tool_command,
)
from repro.devtools.common.context import (
    ModuleContext,
    collect_imports,
    module_name_for,
)
from repro.devtools.common.findings import Finding
from repro.devtools.common.pragmas import Pragmas, apply_waivers, parse_pragmas
from repro.devtools.common.report import (
    DEFAULT_PATHS,
    LintReport,
    iter_python_files,
)
from repro.devtools.common.reporters import render_json, render_text
from repro.devtools.common.sarif import render_sarif

__all__ = [
    "DEFAULT_PATHS",
    "DumpOption",
    "Finding",
    "LintReport",
    "ModuleContext",
    "Pragmas",
    "TOOL_COMMANDS",
    "ToolCLI",
    "ToolCommand",
    "apply_baseline",
    "apply_waivers",
    "collect_imports",
    "configure_parser",
    "existing_reasons",
    "iter_python_files",
    "load_baseline",
    "module_name_for",
    "parse_pragmas",
    "register_tool_parsers",
    "render_json",
    "render_sarif",
    "render_text",
    "run_tool",
    "run_tool_command",
    "write_baseline",
]
