"""Inline waiver pragmas.

Syntax, on (or anywhere within the line span of) the offending statement::

    rng = random.Random(seed)  # detlint: ignore[DET001] -- seed is an explicit API parameter

A bare ``# detlint: ignore`` waives every rule on that line; a
``# detlint: skip-file`` comment anywhere in the file skips it entirely.
Comments are extracted with :mod:`tokenize`, so pragma-shaped text inside
string literals is never mistaken for a waiver.

The pragma prefix is the *tool name* — detlint, conclint and locklint
each parse with their own ``tool=`` argument, so ``# conclint:
ignore[CONC002] -- reason`` works identically to the detlint spelling
without the analyzers' waivers shadowing each other.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field, replace

from repro.devtools.common.findings import Finding

__all__ = ["Pragmas", "apply_waivers", "parse_pragmas"]

#: Compiled pragma patterns, one per tool name ("detlint", "conclint",
#: "locklint").
_PRAGMA_RES: dict[str, re.Pattern[str]] = {}


def _pragma_re(tool: str) -> re.Pattern[str]:
    pattern = _PRAGMA_RES.get(tool)
    if pattern is None:
        pattern = re.compile(
            rf"#\s*{re.escape(tool)}:\s*(?P<kind>ignore|skip-file)"
            r"(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
        )
        _PRAGMA_RES[tool] = pattern
    return pattern

#: Sentinel meaning "waive every rule on this line".
ALL_RULES = "*"


@dataclass
class Pragmas:
    """Waivers parsed from one module's comments."""

    skip_file: bool = False
    #: line number -> set of waived rule codes (or ``{ALL_RULES}``).
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)

    def waives(self, rule: str, first_line: int, last_line: int) -> bool:
        for line in range(first_line, max(first_line, last_line) + 1):
            codes = self.by_line.get(line)
            if codes is not None and (ALL_RULES in codes or rule in codes):
                return True
        return False

    def waives_finding(self, finding: Finding) -> bool:
        """Whether a pragma covers ``finding``.

        Both anchors count: any line in the flagged node's own span, and
        the first line of the enclosing statement — so a violation deep
        inside a multi-line statement can be waived on the line where
        the statement (and typically the reader's attention) starts.
        """
        if self.waives(finding.rule, finding.line, finding.end_line):
            return True
        return bool(finding.stmt_line) and self.waives(
            finding.rule, finding.stmt_line, finding.stmt_line
        )


def apply_waivers(findings: list[Finding], pragmas: Pragmas) -> list[Finding]:
    """Mark pragma-covered findings as waived."""
    return [
        replace(f, waived=True) if pragmas.waives_finding(f) else f
        for f in findings
    ]


def parse_pragmas(source: str, tool: str = "detlint") -> Pragmas:
    pragmas = Pragmas()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    pattern = _pragma_re(tool)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = pattern.search(token.string)
        if match is None:
            continue
        if match.group("kind") == "skip-file":
            pragmas.skip_file = True
            continue
        raw_codes = match.group("codes")
        codes = (
            frozenset(c.strip() for c in raw_codes.split(",") if c.strip())
            if raw_codes
            else frozenset({ALL_RULES})
        )
        line = token.start[0]
        existing = pragmas.by_line.get(line, frozenset())
        pragmas.by_line[line] = existing | codes
    return pragmas
