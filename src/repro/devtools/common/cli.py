"""One CLI skeleton for the four in-house analyzers.

detlint, conclint, locklint and cachelint expose the same UX contract —
positional paths, ``--format text|json|sarif``, a grandfathered-findings
baseline with ``--update-baseline``, ``--list-rules``, ``--verbose`` —
plus per-tool dump flags (conclint's ``--dump-callgraph``, locklint's
``--dump-lockgraph``, cachelint's ``--dump-cachegraph``).  Each tool
declares a :class:`ToolCLI` and the ``python -m repro`` subcommands
route through :func:`configure_parser` and :func:`run_tool`, so the
contract cannot drift between tools.

The :data:`TOOL_COMMANDS` registry completes the skeleton: each
analyzer is one row (subcommand name, help line, cli module), and
``repro.__main__`` wires every row through
:func:`register_tool_parsers`/:func:`run_tool_command` — adding a new
analyzer to the ``python -m repro`` surface is one registry entry, not
a copy-pasted parser/dispatch pair.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.common.baseline import existing_reasons, write_baseline
from repro.devtools.common.report import DEFAULT_PATHS, LintReport
from repro.devtools.common.reporters import render_json, render_text
from repro.devtools.common.sarif import render_sarif

__all__ = [
    "DumpOption",
    "TOOL_COMMANDS",
    "ToolCLI",
    "ToolCommand",
    "configure_parser",
    "register_tool_parsers",
    "run_tool",
    "run_tool_command",
]


@dataclass(frozen=True)
class DumpOption:
    """One ``--dump-*`` flag: emit a deterministic artifact and exit 0."""

    flag: str
    help: str
    #: Renders the artifact from the tool's report (e.g. the call graph
    #: JSON hanging off a conclint ``AnalysisResult``).
    render: Callable[[LintReport], str]

    @property
    def dest(self) -> str:
        return self.flag.lstrip("-").replace("-", "_")


@dataclass(frozen=True)
class ToolCLI:
    """Everything the shared skeleton needs to drive one analyzer."""

    tool: str
    default_baseline: str
    #: ``analyze(paths_or_None, baseline_or_None) -> LintReport``.
    analyze: Callable[
        [list[str | Path] | None, str | Path | None], LintReport
    ]
    #: ``(code, title, summary)`` rows for ``--list-rules``.
    rule_table: Callable[[], list[tuple[str, str, str]]]
    dumps: tuple[DumpOption, ...] = ()


def configure_parser(parser: argparse.ArgumentParser, cli: ToolCLI) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=f"files or directories to analyze (default: {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=cli.default_baseline,
        metavar="FILE",
        help="baseline file of grandfathered findings "
        f"(default: {cli.default_baseline})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (every finding blocks)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show pragma-waived findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    for dump in cli.dumps:
        parser.add_argument(dump.flag, action="store_true", help=dump.help)


def run_tool(args: argparse.Namespace, cli: ToolCLI, out=None) -> int:
    out = out if out is not None else sys.stdout
    if args.list_rules:
        for code, title, summary in cli.rule_table():
            print(f"{code}  {title:<22} {summary}", file=out)
        return 0

    baseline = None if args.no_baseline else args.baseline
    report = cli.analyze(args.paths or None, baseline)

    for dump in cli.dumps:
        if getattr(args, dump.dest, False):
            print(dump.render(report), file=out)
            return 0

    if args.update_baseline:
        write_baseline(
            report.findings, args.baseline, reasons=existing_reasons(args.baseline)
        )
        print(
            f"baseline updated: {args.baseline} "
            f"({len([f for f in report.findings if not f.waived])} entries)",
            file=out,
        )
        return 0

    if args.format == "json":
        print(render_json(report), file=out)
    elif args.format == "sarif":
        print(
            render_sarif(report, tool=cli.tool, rules=cli.rule_table()),
            file=out,
        )
    else:
        print(render_text(report, verbose=args.verbose, tool=cli.tool), file=out)
    return report.exit_code


# ----------------------------------------------------------------------
# The analyzer registry: ``python -m repro <tool>`` in one row per tool.


@dataclass(frozen=True)
class ToolCommand:
    """One analyzer subcommand on the ``python -m repro`` surface."""

    command: str
    help: str
    #: Dotted path of the tool's cli module; it must expose a module
    #: attribute ``CLI`` holding its :class:`ToolCLI`.  Loaded lazily so
    #: ``python -m repro run`` never imports analyzer machinery.
    module: str

    def load(self) -> ToolCLI:
        return importlib.import_module(self.module).CLI


TOOL_COMMANDS = (
    ToolCommand(
        command="lint",
        help="run the determinism linter over the library source",
        module="repro.devtools.detlint.cli",
    ),
    ToolCommand(
        command="conclint",
        help="run the interprocedural concurrency-safety analyzer",
        module="repro.devtools.conclint.cli",
    ),
    ToolCommand(
        command="locklint",
        help="run the lock-discipline & blocking-hazard analyzer",
        module="repro.devtools.locklint.cli",
    ),
    ToolCommand(
        command="cachelint",
        help="run the cache-coherence & epoch-invalidation analyzer",
        module="repro.devtools.cachelint.cli",
    ),
)


def register_tool_parsers(sub) -> None:
    """Add one subparser per registered analyzer."""
    for command in TOOL_COMMANDS:
        parser = sub.add_parser(command.command, help=command.help)
        configure_parser(parser, command.load())


def run_tool_command(
    command: str, args: argparse.Namespace, out=None
) -> int | None:
    """Dispatch a registered analyzer subcommand; ``None`` if not one."""
    for entry in TOOL_COMMANDS:
        if entry.command == command:
            return run_tool(args, entry.load(), out)
    return None
