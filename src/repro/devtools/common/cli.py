"""One CLI skeleton for the three in-house analyzers.

detlint, conclint and locklint expose the same UX contract — positional
paths, ``--format text|json``, a grandfathered-findings baseline with
``--update-baseline``, ``--list-rules``, ``--verbose`` — plus per-tool
dump flags (conclint's ``--dump-callgraph``, locklint's
``--dump-lockgraph``).  Each tool declares a :class:`ToolCLI` and the
``python -m repro`` subcommands route through :func:`configure_parser`
and :func:`run_tool`, so the contract cannot drift between tools.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.common.baseline import existing_reasons, write_baseline
from repro.devtools.common.report import DEFAULT_PATHS, LintReport
from repro.devtools.common.reporters import render_json, render_text

__all__ = ["DumpOption", "ToolCLI", "configure_parser", "run_tool"]


@dataclass(frozen=True)
class DumpOption:
    """One ``--dump-*`` flag: emit a deterministic artifact and exit 0."""

    flag: str
    help: str
    #: Renders the artifact from the tool's report (e.g. the call graph
    #: JSON hanging off a conclint ``AnalysisResult``).
    render: Callable[[LintReport], str]

    @property
    def dest(self) -> str:
        return self.flag.lstrip("-").replace("-", "_")


@dataclass(frozen=True)
class ToolCLI:
    """Everything the shared skeleton needs to drive one analyzer."""

    tool: str
    default_baseline: str
    #: ``analyze(paths_or_None, baseline_or_None) -> LintReport``.
    analyze: Callable[
        [list[str | Path] | None, str | Path | None], LintReport
    ]
    #: ``(code, title, summary)`` rows for ``--list-rules``.
    rule_table: Callable[[], list[tuple[str, str, str]]]
    dumps: tuple[DumpOption, ...] = ()


def configure_parser(parser: argparse.ArgumentParser, cli: ToolCLI) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=f"files or directories to analyze (default: {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=cli.default_baseline,
        metavar="FILE",
        help="baseline file of grandfathered findings "
        f"(default: {cli.default_baseline})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (every finding blocks)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show pragma-waived findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    for dump in cli.dumps:
        parser.add_argument(dump.flag, action="store_true", help=dump.help)


def run_tool(args: argparse.Namespace, cli: ToolCLI, out=None) -> int:
    out = out if out is not None else sys.stdout
    if args.list_rules:
        for code, title, summary in cli.rule_table():
            print(f"{code}  {title:<22} {summary}", file=out)
        return 0

    baseline = None if args.no_baseline else args.baseline
    report = cli.analyze(args.paths or None, baseline)

    for dump in cli.dumps:
        if getattr(args, dump.dest, False):
            print(dump.render(report), file=out)
            return 0

    if args.update_baseline:
        write_baseline(
            report.findings, args.baseline, reasons=existing_reasons(args.baseline)
        )
        print(
            f"baseline updated: {args.baseline} "
            f"({len([f for f in report.findings if not f.waived])} entries)",
            file=out,
        )
        return 0

    if args.format == "json":
        print(render_json(report), file=out)
    else:
        print(render_text(report, verbose=args.verbose, tool=cli.tool), file=out)
    return report.exit_code
