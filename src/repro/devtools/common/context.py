"""Per-module lint context: source, dotted module name, import aliases.

The rules never inspect raw AST names directly — they ask the context to
*resolve* an expression to a canonical dotted path (``random.Random``,
``datetime.datetime.now``, ``repro.llm.rng.derive_seed``), which makes
``import random as _random`` and ``from random import Random as R``
indistinguishable from the plain spellings.  detlint's per-file rules,
conclint's project index and locklint's lock-site typing all resolve
through this one table.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["ModuleContext", "collect_imports", "module_name_for"]


def module_name_for(path_parts: tuple[str, ...]) -> str:
    """Dotted module name from a file path's parts.

    The name is rooted at the *last* ``repro`` component so both
    ``src/repro/llm/rng.py`` and an installed ``.../site-packages/repro/
    llm/rng.py`` resolve to ``repro.llm.rng``.  Files outside a ``repro``
    tree (test fixtures, scratch scripts) fall back to their bare stem.
    """
    parts = list(path_parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__" and len(parts) > 1:
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return parts[-1] if parts else ""


def collect_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """Map every locally bound import name to its canonical dotted path."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: climb from the current package.
                package = module.split(".")
                package = package[: len(package) - node.level]
                base = ".".join(package + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases


@dataclass
class ModuleContext:
    """Everything a rule needs to know about the module being linted."""

    path: str
    module: str
    source_lines: list[str] = field(default_factory=list)
    imports: dict[str, str] = field(default_factory=dict)

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, if known.

        Returns ``None`` when the chain is not rooted in an imported name
        (e.g. a method call on a local variable) — rules must treat that
        as "unknown receiver" and stay silent rather than guess.
        """
        chain: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id)
        if root is None:
            return None
        return ".".join([root, *reversed(chain)])

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""
