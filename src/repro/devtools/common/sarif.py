"""SARIF 2.1.0 rendering of a :class:`LintReport`, shared by all tools.

SARIF (Static Analysis Results Interchange Format) is what CI systems
and editors ingest for inline annotations.  One renderer serves all
four analyzers — the tool name and rule table are parameters — so the
mapping from the in-house :class:`Finding` model cannot drift between
them:

* every finding becomes a ``result`` with the rule id, message, and a
  physical location (path, line, snippet);
* blocking findings carry ``level: error``; waived and baselined ones
  are demoted to ``note`` with the suppression recorded in the SARIF
  ``suppressions`` array (kind ``inSource`` for pragmas, ``external``
  for the baseline) — they stay visible, as debt should, without
  failing the ingesting gate;
* the tool's rule table becomes the driver's ``rules`` array, so a
  viewer can show the rule title next to each result.

Output is deterministic: findings arrive pre-sorted from the report and
keys are emitted sorted, so the JSON is byte-stable for a given
analysis — the same property the JSON reporter pins, round-tripped by
a regression test.
"""

from __future__ import annotations

import json

from repro.devtools.common.findings import Finding
from repro.devtools.common.report import LintReport

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _level(finding: Finding) -> str:
    return "note" if (finding.waived or finding.baselined) else "error"


def _suppressions(finding: Finding) -> list[dict[str, str]]:
    suppressions = []
    if finding.waived:
        suppressions.append(
            {"kind": "inSource", "justification": "pragma waiver"}
        )
    if finding.baselined:
        suppressions.append(
            {"kind": "external", "justification": "baseline entry"}
        )
    return suppressions


def _result(finding: Finding) -> dict[str, object]:
    region: dict[str, object] = {"startLine": finding.line}
    if finding.col:
        region["startColumn"] = finding.col + 1
    if finding.end_line and finding.end_line >= finding.line:
        region["endLine"] = finding.end_line
    if finding.snippet:
        region["snippet"] = {"text": finding.snippet}
    result: dict[str, object] = {
        "ruleId": finding.rule,
        "level": _level(finding),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": region,
                }
            }
        ],
    }
    suppressions = _suppressions(finding)
    if suppressions:
        result["suppressions"] = suppressions
    return result


def render_sarif(
    report: LintReport,
    *,
    tool: str,
    rules: list[tuple[str, str, str]] | None = None,
) -> str:
    """One SARIF run for one analyzer's report.

    ``rules`` is the tool's ``(code, title, summary)`` table; rules are
    emitted in table order so the driver metadata is stable.
    """
    driver: dict[str, object] = {"name": tool}
    if rules:
        driver["rules"] = [
            {
                "id": code,
                "name": title,
                "shortDescription": {"text": title},
                "fullDescription": {"text": summary},
            }
            for code, title, summary in rules
        ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": [_result(f) for f in report.findings],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
