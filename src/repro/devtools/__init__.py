"""Developer tooling that ships with the reproduction.

Nothing in this package is imported by the library at runtime; it exists
so correctness tooling (the determinism linter, future codegen helpers)
is versioned, tested and CI-enforced alongside the code it guards.
"""
