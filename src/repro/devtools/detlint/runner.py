"""File discovery, per-module rule execution, and report assembly."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.devtools.common.baseline import apply_baseline, load_baseline
from repro.devtools.common.context import (
    ModuleContext,
    collect_imports,
    module_name_for,
)
from repro.devtools.common.findings import Finding
from repro.devtools.common.pragmas import apply_waivers, parse_pragmas
from repro.devtools.common.report import (
    DEFAULT_PATHS,
    LintReport,
    iter_python_files,
)
from repro.devtools.detlint.registry import all_rules

# Rule modules register themselves on import.
from repro.devtools.detlint import rules as _rules  # noqa: F401

__all__ = ["DEFAULT_PATHS", "LintReport", "lint_paths", "lint_source"]


def lint_source(source: str, path: str | Path = "<string>") -> list[Finding]:
    """Lint one module's source text; findings sorted by location.

    Pragma waivers are applied here; baseline matching happens at the
    :func:`lint_paths` level (the baseline is a repository concern).
    """
    display = str(path)
    parts = Path(display).parts
    module = module_name_for(parts)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="DET000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    pragmas = parse_pragmas(source, tool="detlint")
    if pragmas.skip_file:
        return []
    ctx = ModuleContext(
        path=display,
        module=module,
        source_lines=source.splitlines(),
        imports=collect_imports(tree, module),
    )
    findings: list[Finding] = []
    for rule_cls in all_rules():
        if not rule_cls.applies_to(module):
            continue
        findings.extend(rule_cls(ctx).run(tree))
    findings.sort()
    return apply_waivers(findings, pragmas)


def lint_paths(
    paths: list[str | Path] | None = None,
    baseline: str | Path | None = None,
) -> LintReport:
    """Lint files/trees and apply the baseline; the main entry point."""
    targets = list(paths) if paths else [Path(p) for p in DEFAULT_PATHS]
    findings: list[Finding] = []
    files = iter_python_files(targets)
    for file_path in files:
        findings.extend(
            lint_source(file_path.read_text(encoding="utf-8"), file_path)
        )
    findings.sort()
    base_dir = Path(baseline).resolve().parent if baseline is not None else None
    findings = apply_baseline(findings, load_baseline(baseline), base_dir)
    return LintReport(findings=findings, files_checked=len(files))
