"""File discovery, per-module rule execution, and report assembly."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.detlint.baseline import apply_baseline, load_baseline
from repro.devtools.detlint.context import ModuleContext, collect_imports, module_name_for
from repro.devtools.detlint.findings import Finding
from repro.devtools.detlint.pragmas import apply_waivers, parse_pragmas
from repro.devtools.detlint.registry import all_rules

# Rule modules register themselves on import.
from repro.devtools.detlint import rules as _rules  # noqa: F401

__all__ = ["LintReport", "lint_paths", "lint_source"]

#: The library tree the determinism contract covers.  ``tools/`` and
#: ``benchmarks/`` are operator-facing (timing is their job) and are
#: deliberately outside the default scope.
DEFAULT_PATHS = ("src/repro",)


@dataclass
class LintReport:
    """All findings from one lint run, sorted by location."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def blocking(self) -> list[Finding]:
        return [f for f in self.findings if f.blocking]

    @property
    def waived(self) -> list[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.blocking else 0

    def summary(self) -> dict[str, int]:
        return {
            "files": self.files_checked,
            "findings": len(self.findings),
            "blocking": len(self.blocking),
            "waived": len(self.waived),
            "baselined": len(self.baselined),
        }


def lint_source(source: str, path: str | Path = "<string>") -> list[Finding]:
    """Lint one module's source text; findings sorted by location.

    Pragma waivers are applied here; baseline matching happens at the
    :func:`lint_paths` level (the baseline is a repository concern).
    """
    display = str(path)
    parts = Path(display).parts
    module = module_name_for(parts)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="DET000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    pragmas = parse_pragmas(source)
    if pragmas.skip_file:
        return []
    ctx = ModuleContext(
        path=display,
        module=module,
        source_lines=source.splitlines(),
        imports=collect_imports(tree, module),
    )
    findings: list[Finding] = []
    for rule_cls in all_rules():
        if not rule_cls.applies_to(module):
            continue
        findings.extend(rule_cls(ctx).run(tree))
    findings.sort()
    return apply_waivers(findings, pragmas)


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Every ``.py`` file under the given paths, sorted for determinism."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def lint_paths(
    paths: list[str | Path] | None = None,
    baseline: str | Path | None = None,
) -> LintReport:
    """Lint files/trees and apply the baseline; the main entry point."""
    targets = list(paths) if paths else [Path(p) for p in DEFAULT_PATHS]
    findings: list[Finding] = []
    files = iter_python_files(targets)
    for file_path in files:
        findings.extend(
            lint_source(file_path.read_text(encoding="utf-8"), file_path)
        )
    findings.sort()
    base_dir = Path(baseline).resolve().parent if baseline is not None else None
    findings = apply_baseline(findings, load_baseline(baseline), base_dir)
    return LintReport(findings=findings, files_checked=len(files))
