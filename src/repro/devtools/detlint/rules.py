"""The determinism rules, DET001–DET006.

Every rule reasons over *resolved* dotted paths (see
:meth:`ModuleContext.resolve`), so aliased imports cannot hide a
violation, and method calls on local variables (``rng.random()`` on a
``derive_rng`` product) are never confused with module-level access.

Rules deliberately under-report when the receiver of a call cannot be
resolved statically: a linter that guesses produces waiver noise, and
waiver noise trains people to ignore it.
"""

from __future__ import annotations

import ast

from repro.devtools.detlint.registry import Rule, register

__all__ = ["ORDER_NEUTRAL_BUILTINS"]

#: Builtins through which unordered iteration is harmless: they either
#: impose an order (``sorted``), return an unordered value again
#: (``set``/``frozenset``), or aggregate order-insensitively.
ORDER_NEUTRAL_BUILTINS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all"}
)

_DERIVE_SEED = "repro.llm.rng.derive_seed"


def _is_builtin(ctx, node: ast.expr, name: str) -> bool:
    """Whether ``node`` is the builtin ``name`` (not rebound by an import)."""
    return (
        isinstance(node, ast.Name)
        and node.id == name
        and node.id not in ctx.imports
    )


@register
class GlobalRandomRule(Rule):
    """DET001 — ad-hoc RNG use outside the derived-seed discipline.

    The study's invariant is that every draw is a pure function of
    ``(seed, config)`` routed through :func:`repro.llm.rng.derive_seed`'s
    collision-free length-prefixed encoding.  The module-level ``random``
    functions share hidden global state across call sites; bare
    ``random.Random(x)`` constructions invite collision-prone ad-hoc
    seed encodings (the ``(a, b).__repr__()`` trick).
    """

    code = "DET001"
    title = "ad-hoc RNG"
    summary = (
        "random.* call or random.Random(...) not seeded via derive_seed; "
        "use repro.llm.rng.derive_rng/derive_seed"
    )
    exempt_modules = ("repro.llm.rng",)

    def _is_derived_seed(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        resolved = self.ctx.resolve(node.func)
        if resolved == _DERIVE_SEED:
            return True
        # Lenient fallback: a locally defined wrapper named derive_seed.
        return isinstance(node.func, ast.Name) and node.func.id == "derive_seed"

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        if resolved == "random.Random":
            seeded_ok = (
                len(node.args) == 1
                and not node.keywords
                and self._is_derived_seed(node.args[0])
            )
            if not seeded_ok:
                self.report(
                    node,
                    "random.Random(...) seeded outside derive_seed; use "
                    "derive_rng(*components) or random.Random(derive_seed(...))",
                )
        elif resolved == "random.SystemRandom":
            self.report(node, "random.SystemRandom draws OS entropy and can never be reproduced")
        elif resolved is not None and resolved.startswith("random."):
            self.report(
                node,
                f"{resolved}() uses the hidden module-global RNG; draw from a "
                "derive_rng(...) instance instead",
            )
        self.generic_visit(node)


@register
class WallClockRule(Rule):
    """DET002 — wall-clock reads inside library code.

    Results must not depend on when the study runs.  The simulated world
    has an explicit ``StudyClock``/``study_date``; real time is only
    legitimate for operator-facing timing (CLI progress, benchmarks),
    which lives in ``tools/``/``benchmarks/`` or carries a waiver.
    """

    code = "DET002"
    title = "wall clock"
    summary = (
        "time.time/monotonic or datetime.now/utcnow/today in library code; "
        "thread the StudyClock/config date instead"
    )

    _FORBIDDEN = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.localtime",
            "time.gmtime",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        if resolved in self._FORBIDDEN:
            self.report(
                node,
                f"{resolved}() reads the wall clock; results must be a pure "
                "function of (seed, config)",
            )
        self.generic_visit(node)


@register
class SetOrderRule(Rule):
    """DET003 — iteration order of unordered collections leaking out.

    Set iteration order varies with ``PYTHONHASHSEED`` and insertion
    history; any set expression feeding an order-sensitive consumer
    (a ``for`` loop, list/tuple materialisation, ``str.join``,
    ``enumerate``) without an enclosing ``sorted()`` is flagged.

    ``dict`` / ``.keys()`` / ``.items()`` iteration is insertion-ordered
    (guaranteed since Python 3.7) and therefore deterministic given
    deterministic construction, so it is deliberately *not* flagged —
    flagging it would bury the real signal under hundreds of waivers.
    Set-typed *variables* are likewise not tracked (no dataflow); the
    rule targets the syntactic forms where intent is unambiguous.
    """

    code = "DET003"
    title = "set iteration order"
    summary = (
        "set literal/call iterated into ordered output without sorted(); "
        "wrap in sorted() or restructure to order-insensitive counting"
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._neutral_depth = 0

    # -- what counts as an unordered expression ------------------------
    def _is_unordered(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if _is_builtin(self.ctx, node.func, "set") or _is_builtin(
                self.ctx, node.func, "frozenset"
            ):
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_unordered(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_unordered(node.left) or self._is_unordered(node.right)
        return False

    def _flag(self, node: ast.expr, consumer: str) -> None:
        if self._neutral_depth == 0 and self._is_unordered(node):
            self.report(
                node,
                f"set iteration order is PYTHONHASHSEED-dependent and feeds "
                f"{consumer}; wrap in sorted() or restructure",
            )

    # -- order-sensitive consumers -------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._flag(node.iter, "a for loop")
        self.generic_visit(node)

    def _check_generators(self, node) -> None:
        for generator in node.generators:
            self._flag(generator.iter, "a comprehension")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_generators(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_generators(node)

    # Set/dict comprehensions rebuild unordered containers; iteration
    # order cannot leak through them, so only their nested parts matter.
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if any(_is_builtin(self.ctx, func, name) for name in ("list", "tuple", "enumerate")):
            if node.args:
                self._flag(node.args[0], f"{func.id}()")
        elif isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
            self._flag(node.args[0], "str.join()")
        if any(_is_builtin(self.ctx, func, name) for name in ORDER_NEUTRAL_BUILTINS):
            self._neutral_depth += 1
            self.generic_visit(node)
            self._neutral_depth -= 1
        else:
            self.generic_visit(node)


@register
class BuiltinHashRule(Rule):
    """DET004 — builtin ``hash()``.

    ``hash(str | bytes)`` is salted per process by ``PYTHONHASHSEED``;
    two runs of the same study disagree.  Stable hashing goes through
    :func:`repro.llm.rng.derive_seed` (SHA-256) instead.
    """

    code = "DET004"
    title = "builtin hash()"
    summary = (
        "hash() on str/bytes is PYTHONHASHSEED-salted; use "
        "derive_seed(...) for stable hashing"
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _is_builtin(self.ctx, node.func, "hash"):
            self.report(
                node,
                "builtin hash() is salted per process (PYTHONHASHSEED) for "
                "str/bytes; use derive_seed(...) for a stable digest",
            )
        self.generic_visit(node)


@register
class FilesystemOrderRule(Rule):
    """DET005 — filesystem enumeration without ``sorted()``.

    ``os.listdir`` / ``glob`` / ``Path.iterdir`` order is
    filesystem-dependent (and differs across machines); any consumer
    that is not wrapped in ``sorted()`` is flagged.
    """

    code = "DET005"
    title = "fs enumeration order"
    summary = (
        "os.listdir/glob/Path.iterdir without sorted(); directory order "
        "is filesystem-dependent"
    )

    _MODULE_FUNCS = frozenset(
        {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
    )
    _PATH_METHODS = frozenset({"iterdir", "glob", "rglob"})

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._neutral_depth = 0

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        flagged = resolved in self._MODULE_FUNCS
        if not flagged and resolved is None:
            # Unresolvable receiver with a Path-enumeration method name:
            # a heuristic, but Path objects are the overwhelming case.
            flagged = (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._PATH_METHODS
            )
        if flagged and self._neutral_depth == 0:
            shown = resolved or node.func.attr
            self.report(
                node,
                f"{shown}() enumeration order is filesystem-dependent; wrap "
                "the call in sorted()",
            )
        if _is_builtin(self.ctx, node.func, "sorted"):
            self._neutral_depth += 1
            self.generic_visit(node)
            self._neutral_depth -= 1
        else:
            self.generic_visit(node)


@register
class EnvironReadRule(Rule):
    """DET006 — environment reads outside the config boundary.

    Ambient environment reads scattered through library code make a
    study's behaviour depend on invisible machine state.  All
    environment access funnels through :mod:`repro.core.config` (which
    turns it into explicit, logged configuration).
    """

    code = "DET006"
    title = "ambient environ read"
    summary = (
        "os.environ/os.getenv outside repro.core.config; thread the value "
        "through StudyConfig"
    )
    exempt_modules = ("repro.core.config",)

    _TARGETS = frozenset({"os.environ", "os.environb", "os.getenv"})

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.ctx.resolve(node) in self._TARGETS:
            self.report(
                node,
                "ambient environment read; route it through repro.core.config "
                "so the study config stays the single source of truth",
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # Catches `from os import environ, getenv` spellings.
        if self.ctx.resolve(node) in self._TARGETS:
            self.report(
                node,
                "ambient environment read; route it through repro.core.config "
                "so the study config stays the single source of truth",
            )
