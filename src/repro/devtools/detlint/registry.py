"""Rule base class and registry.

Each rule is a small :class:`ast.NodeVisitor` with a ``DETnnn`` code.
Registering is declarative (the :func:`register` decorator); the runner
instantiates every registered rule per module, in code order, so adding a
rule is a single self-contained class.
"""

from __future__ import annotations

import ast

from repro.devtools.common.context import ModuleContext
from repro.devtools.common.findings import Finding

__all__ = ["Rule", "all_rules", "register", "rule_table"]

_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[type[Rule]]:
    """Registered rule classes, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_table() -> list[tuple[str, str, str]]:
    """``(code, title, summary)`` rows for ``lint --list-rules`` / docs."""
    return [
        (cls.code, cls.title, cls.summary) for cls in all_rules()
    ]


class Rule(ast.NodeVisitor):
    """Base class for one determinism rule.

    Subclasses set ``code``/``title``/``summary``, optionally
    ``exempt_modules`` (dotted prefixes the rule does not apply to), and
    implement ``visit_*`` methods that call :meth:`report`.
    """

    code: str = ""
    title: str = ""
    summary: str = ""
    #: Dotted module names (exact or package prefixes) this rule skips.
    exempt_modules: tuple[str, ...] = ()

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._stmt_lines: list[int] = []

    @classmethod
    def applies_to(cls, module: str) -> bool:
        return not any(
            module == exempt or module.startswith(exempt + ".")
            for exempt in cls.exempt_modules
        )

    def visit(self, node: ast.AST):
        # Track the enclosing-statement stack so report() can anchor
        # pragma lookup to the statement's first line as well as the
        # violating node's own lines (multi-line statements report deep
        # inside themselves; the waiver belongs where the statement
        # starts).
        if isinstance(node, ast.stmt):
            self._stmt_lines.append(node.lineno)
            try:
                return super().visit(node)
            finally:
                self._stmt_lines.pop()
        return super().visit(node)

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                rule=self.code,
                message=message,
                snippet=self.ctx.snippet(line),
                end_line=getattr(node, "end_lineno", line) or line,
                stmt_line=self._stmt_lines[-1] if self._stmt_lines else line,
            )
        )

    def run(self, tree: ast.Module) -> list[Finding]:
        self.visit(tree)
        return self.findings
