"""Inline waiver pragmas.

Syntax, on (or anywhere within the line span of) the offending statement::

    rng = random.Random(seed)  # detlint: ignore[DET001] -- seed is an explicit API parameter

A bare ``# detlint: ignore`` waives every rule on that line; a
``# detlint: skip-file`` comment anywhere in the file skips it entirely.
Comments are extracted with :mod:`tokenize`, so pragma-shaped text inside
string literals is never mistaken for a waiver.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Pragmas", "parse_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*detlint:\s*(?P<kind>ignore|skip-file)"
    r"(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)

#: Sentinel meaning "waive every rule on this line".
ALL_RULES = "*"


@dataclass
class Pragmas:
    """Waivers parsed from one module's comments."""

    skip_file: bool = False
    #: line number -> set of waived rule codes (or ``{ALL_RULES}``).
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)

    def waives(self, rule: str, first_line: int, last_line: int) -> bool:
        for line in range(first_line, max(first_line, last_line) + 1):
            codes = self.by_line.get(line)
            if codes is not None and (ALL_RULES in codes or rule in codes):
                return True
        return False


def parse_pragmas(source: str) -> Pragmas:
    pragmas = Pragmas()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        if match.group("kind") == "skip-file":
            pragmas.skip_file = True
            continue
        raw_codes = match.group("codes")
        codes = (
            frozenset(c.strip() for c in raw_codes.split(",") if c.strip())
            if raw_codes
            else frozenset({ALL_RULES})
        )
        line = token.start[0]
        existing = pragmas.by_line.get(line, frozenset())
        pragmas.by_line[line] = existing | codes
    return pragmas
