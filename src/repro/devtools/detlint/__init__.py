"""detlint — an AST-based determinism & reproducibility linter.

The reproduction's core invariant is that every result is a pure
function of ``(seed, config)``; the parallel study runner even promises
byte-identical output across worker counts.  detlint machine-checks the
coding discipline that invariant rests on:

======  ==========================================================
DET001  ``random.*`` / bare ``random.Random(...)`` outside the
        ``derive_rng``/``derive_seed`` discipline
DET002  wall-clock reads (``time.time``, ``datetime.now`` …) in
        library code
DET003  set iteration order leaking into ordered output
DET004  builtin ``hash()`` (``PYTHONHASHSEED``-salted)
DET005  filesystem enumeration without ``sorted()``
DET006  ``os.environ`` reads outside ``repro.core.config``
======  ==========================================================

Waive a single site with ``# detlint: ignore[DET001] -- reason``;
grandfather legacy debt in ``.detlint-baseline.json`` (baselined
findings warn, new findings fail).  Run via ``python -m repro lint``.
The findings/pragma/baseline/reporter machinery lives in
:mod:`repro.devtools.common`, shared with conclint and locklint.
"""

from repro.devtools.common.findings import Finding
from repro.devtools.detlint.registry import Rule, all_rules, register, rule_table
from repro.devtools.detlint.runner import LintReport, lint_paths, lint_source

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
    "rule_table",
]
