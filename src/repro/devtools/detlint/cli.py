"""The ``python -m repro lint`` subcommand (shared CLI skeleton)."""

from __future__ import annotations

import argparse

from repro.devtools.common.cli import ToolCLI, run_tool
from repro.devtools.common.cli import configure_parser as _configure
from repro.devtools.detlint.registry import rule_table
from repro.devtools.detlint.runner import lint_paths

__all__ = ["configure_parser", "run_lint"]

DEFAULT_BASELINE = ".detlint-baseline.json"

CLI = ToolCLI(
    tool="detlint",
    default_baseline=DEFAULT_BASELINE,
    analyze=lint_paths,
    rule_table=rule_table,
)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    _configure(parser, CLI)


def run_lint(args: argparse.Namespace, out=None) -> int:
    return run_tool(args, CLI, out)
