"""Runtime lock-order witness (debug mode).

locklint (:mod:`repro.devtools.locklint`) proves the lock discipline
statically; this module is the dynamic half of the same contract.  When
``REPRO_LOCK_WITNESS=1`` (see
:func:`repro.core.config.lock_witness_enabled`), every lock site built
through :func:`witness_lock` returns an :class:`OrderedLock` that checks
each acquisition *before* blocking on the real lock:

1. re-entrant acquisition of the same (non-reentrant) site on one
   thread raises instead of self-deadlocking;
2. an acquisition that inverts the canonical hierarchy
   (:data:`CANONICAL_HIERARCHY`, the order locklint's lock graph is
   topologically sorted into) raises immediately;
3. every ``held -> acquired`` pair is recorded in a global observed-order
   graph; an acquisition whose edge closes a cycle raises with both
   acquisition paths, even for sites the hierarchy does not rank.

Because all three checks run before the underlying ``acquire()``, an
ordering bug becomes a failing test with a readable message instead of a
hung worker.  With the flag unset, :func:`witness_lock` returns a plain
``threading.Lock`` — zero overhead in production paths.
"""

from __future__ import annotations

import threading

from repro.core.config import lock_witness_enabled

__all__ = [
    "CANONICAL_HIERARCHY",
    "LockOrderViolation",
    "OrderedLock",
    "observed_edges",
    "reset_witness",
    "witness_lock",
]

#: The canonical single-order hierarchy over every named lock site in
#: ``src/repro`` (outermost first).  A thread holding site ``A`` may only
#: acquire sites strictly *later* in this tuple.  This is exactly the
#: order ``python -m repro locklint --dump-lockgraph`` emits (a
#: topological sort of the static acquired-while-held graph with
#: alphabetical tie-breaking — the one real constraint today is
#: ``CircuitBreaker._lock`` before ``SimClock._lock``); a meta-test
#: asserts the two never drift.  ``docs/architecture.md`` documents the
#: reasoning per site.
CANONICAL_HIERARCHY = (
    "AnswerEngine._cache_lock",
    "BoundedCache._lock",
    "CacheWitness._lock",
    "CircuitBreaker._lock",
    "EvidenceCache._lock",
    "Quarantine._lock",
    "ResilienceContext._lock",
    "ResilienceEvents._lock",
    "RunJournal._lock",
    "ServeStats._lock",
    "ShardCoverageLog._lock",
    "ShardSupervisor._lock",
    "ShardWorker._lock",
    "SimClock._lock",
    "SingleFlight._lock",
)

_RANK = {site: index for index, site in enumerate(CANONICAL_HIERARCHY)}


class LockOrderViolation(RuntimeError):
    """An acquisition that deadlocks — or could, on another schedule."""


class _WitnessState:
    """Per-thread held stacks plus the global observed-order edge graph.

    All mutation happens through methods on the single module-level
    instance; the meta-lock only guards the (tiny) edge graph, never the
    witnessed locks themselves, so it cannot participate in the orders
    it polices.
    """

    def __init__(self) -> None:
        self._meta = threading.Lock()
        #: outer site -> inner site -> provenance (the held stack the
        #: first time the edge was observed).
        self._edges: dict[str, dict[str, str]] = {}
        self._held = threading.local()

    # -- per-thread held stack ----------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def push(self, site: str) -> None:
        self._stack().append(site)

    def pop(self, site: str) -> None:
        stack = self._stack()
        # Releases are LIFO in practice; tolerate out-of-order release
        # by removing the innermost matching entry.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == site:
                del stack[index]
                return

    # -- the checks (all run BEFORE the real acquire) -----------------

    def check(self, site: str) -> None:
        held = self._stack()
        if site in held:
            raise LockOrderViolation(
                f"re-entrant acquisition of non-reentrant lock site {site!r} "
                f"(held stack: {held})"
            )
        if not held:
            return
        outer = held[-1]
        if site in _RANK and outer in _RANK and _RANK[site] < _RANK[outer]:
            raise LockOrderViolation(
                f"hierarchy inversion: acquiring {site!r} while holding "
                f"{outer!r}; the canonical order requires {site!r} before "
                f"{outer!r} (held stack: {held})"
            )
        thread = threading.current_thread().name
        provenance = f"{thread}: held {held} then acquired {site!r}"
        with self._meta:
            for outer_site in held:
                self._edges.setdefault(outer_site, {}).setdefault(
                    site, provenance
                )
            cycle = self._find_path(site, held[-1])
            if cycle is not None:
                steps = " -> ".join(cycle + [site])
                paths = "; ".join(
                    self._edges[a][b]
                    for a, b in zip(cycle, cycle[1:] + [site])
                )
                raise LockOrderViolation(
                    f"lock-order cycle closed by acquiring {site!r} while "
                    f"holding {held[-1]!r}: {steps} (first observed: {paths}; "
                    f"current: {provenance})"
                )

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """Deterministic DFS path ``start -> ... -> goal`` in the edge graph."""
        seen: set[str] = set()
        path: list[str] = []

        def walk(node: str) -> bool:
            if node == goal:
                path.append(node)
                return True
            if node in seen:
                return False
            seen.add(node)
            for nxt in sorted(self._edges.get(node, ())):
                if walk(nxt):
                    path.insert(0, node)
                    return True
            return False

        return path if walk(start) else None

    # -- introspection ------------------------------------------------

    def snapshot(self) -> list[tuple[str, str, str]]:
        with self._meta:
            return [
                (outer, inner, self._edges[outer][inner])
                for outer in sorted(self._edges)
                for inner in sorted(self._edges[outer])
            ]

    def reset(self) -> None:
        with self._meta:
            self._edges.clear()
            self._held = threading.local()


_STATE = _WitnessState()


class OrderedLock:
    """A ``threading.Lock`` that fails loudly on ordering bugs.

    Drop-in for the subset of the lock API the codebase uses (context
    manager, ``acquire``/``release``, ``locked``).  Checks run before
    the underlying acquire so a violation raises instead of hanging.
    """

    __slots__ = ("_site", "_lock")

    def __init__(self, site: str) -> None:
        self._site = site
        self._lock = threading.Lock()

    @property
    def site(self) -> str:
        return self._site

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _STATE.check(self._site)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            _STATE.push(self._site)
        return acquired

    def release(self) -> None:
        self._lock.release()
        _STATE.pop(self._site)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        return f"OrderedLock({self._site!r})"


def witness_lock(site: str) -> "threading.Lock | OrderedLock":
    """Build the lock for one named site.

    ``site`` is the canonical ``Class._attr`` name locklint discovers
    statically; passing it here is what ties the static and dynamic
    halves together.  Returns a plain ``threading.Lock`` unless
    ``REPRO_LOCK_WITNESS=1`` at construction time.
    """
    if lock_witness_enabled():
        return OrderedLock(site)
    return threading.Lock()


def observed_edges() -> list[tuple[str, str, str]]:
    """Sorted ``(outer, inner, provenance)`` edges seen so far (tests)."""
    return _STATE.snapshot()


def reset_witness() -> None:
    """Clear the observed-order graph and held stacks (tests)."""
    _STATE.reset()
