"""Pre-training knowledge: per-entity priors from corpus exposure.

"Pre-training on vast, static web corpora creates a latent knowledge base"
(paper, Section 1).  Here the pre-training corpus *is* the synthetic web:
an entity's *exposure* is the number of corpus pages covering it, and from
exposure we derive

* **confidence** — how sharp the model's internal representation is
  (saturating in exposure, modulated by the catalog's popularity latent,
  which declares how much of the wider pre-training web the entity
  occupies beyond our corpus sample), and
* **prior mean** — a noisy estimate of the entity's true quality, with
  noise shrinking as confidence grows.  The estimate is *frozen per model
  seed*: popular entities have "stable conceptual representations"
  (Section 3.2.2) that do not change between calls.

The re-sampled, per-call variant (:meth:`PretrainedKnowledge.sample_prior`)
models the *vague* prior of a niche entity, which "fluctuates in
per-comparison judgments" (Section 3.3.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.entities.catalog import EntityCatalog
from repro.llm.rng import derive_rng
from repro.webgraph.corpus import Corpus

__all__ = ["PretrainedKnowledge", "PriorBelief"]


@dataclass(frozen=True)
class PriorBelief:
    """The model's frozen internal belief about one entity."""

    entity_id: str
    mean: float        # prior quality estimate in [0, 1]
    confidence: float  # prior sharpness in [0, 1]
    sigma: float       # residual uncertainty used for per-call resampling


class PretrainedKnowledge:
    """Per-entity priors derived from corpus exposure.

    Parameters
    ----------
    corpus:
        The pre-training corpus (the synthetic web).
    catalog:
        Entity catalog supplying true qualities and popularity latents.
    model_seed:
        Identity of the pre-training run; priors are deterministic
        functions of ``(model_seed, entity_id)``.
    exposure_half_saturation:
        Exposure (page count) at which confidence reaches half its cap.
    base_sigma:
        Prior noise scale at zero confidence.
    anchor:
        The neutral default assessment the model falls back to when it
        knows little about an entity.  Low-confidence beliefs shrink
        toward the anchor (an LLM asked about an obscure firm gives a
        bland, middling appraisal), so a vague prior is *flat*, not
        randomly extreme.
    """

    def __init__(
        self,
        corpus: Corpus,
        catalog: EntityCatalog,
        model_seed: int = 0,
        exposure_half_saturation: float = 12.0,
        base_sigma: float = 0.08,
        anchor: float = 0.55,
    ) -> None:
        if exposure_half_saturation <= 0:
            raise ValueError("exposure_half_saturation must be positive")
        if base_sigma < 0:
            raise ValueError("base_sigma must be non-negative")
        if not 0.0 <= anchor <= 1.0:
            raise ValueError("anchor must be in [0, 1]")
        self._model_seed = model_seed
        self._beliefs: dict[str, PriorBelief] = {}
        for entity in catalog:
            exposure = corpus.entity_exposure(entity.id)
            saturation = exposure / (exposure + exposure_half_saturation)
            confidence = saturation * (0.2 + 0.8 * entity.popularity)
            sigma = base_sigma * (1.0 - confidence)
            rng = derive_rng("prior", model_seed, entity.id)
            shrunk = anchor + confidence * (entity.true_quality - anchor)
            mean = min(1.0, max(0.0, shrunk + rng.gauss(0.0, sigma)))
            self._beliefs[entity.id] = PriorBelief(
                entity_id=entity.id,
                mean=mean,
                confidence=confidence,
                sigma=sigma,
            )

    @property
    def model_seed(self) -> int:
        return self._model_seed

    def belief(self, entity_id: str) -> PriorBelief:
        """The frozen belief about an entity; raises ``KeyError``."""
        try:
            return self._beliefs[entity_id]
        except KeyError:
            raise KeyError(f"no pre-training belief for {entity_id!r}") from None

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._beliefs

    def confidence(self, entity_id: str) -> float:
        """Prior sharpness in ``[0, 1]``."""
        return self.belief(entity_id).confidence

    def prior_mean(self, entity_id: str) -> float:
        """The frozen prior quality estimate."""
        return self.belief(entity_id).mean

    def sample_prior(self, entity_id: str, call_rng: random.Random) -> float:
        """A per-call realization of the prior.

        Sharp priors barely move; vague priors wander — this is the
        mechanism behind the pairwise inconsistency of niche entities
        (Table 2's low niche tau).
        """
        belief = self.belief(entity_id)
        return min(1.0, max(0.0, belief.mean + call_rng.gauss(0.0, belief.sigma)))

    def known_entities(self) -> list[str]:
        """All entity ids with beliefs, in catalog order."""
        return list(self._beliefs)
