"""The context window: ordered evidence snippets.

Section 3.1 retrieves evidence ``D_q = {(s_j, u_j)}`` — ordered pairs of
text snippets and URLs — and feeds it to the model.  The perturbation
experiments operate on this object: Snippet Shuffle permutes it,
Entity-Swap Injection rewrites entity mentions inside it, and strict
grounding restricts the model to it.

The window exposes an **order-sensitive fingerprint**: hashing the
snippets *in order* means any permutation re-derives the model's noise,
which is precisely how a temperature-0 transformer reacts to reordered
context.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, replace

from repro.llm.rng import derive_seed

__all__ = ["ContextWindow", "EvidenceSnippet"]


@dataclass(frozen=True)
class EvidenceSnippet:
    """One (snippet, url) evidence pair.

    ``entity_stance`` maps entity ids substantively discussed by the
    snippet to the stance a reader would extract, in ``[-1, 1]``.
    """

    text: str
    url: str
    domain: str
    entity_stance: dict[str, float]

    def supports(self, entity_id: str) -> bool:
        """Whether the snippet provides evidence about ``entity_id``."""
        return entity_id in self.entity_stance

    def with_stances(self, stances: dict[str, float]) -> "EvidenceSnippet":
        """Copy with a replaced stance map (used by ESI)."""
        return replace(self, entity_stance=dict(stances))


class ContextWindow(Sequence[EvidenceSnippet]):
    """An immutable, ordered sequence of evidence snippets."""

    def __init__(self, snippets: Iterable[EvidenceSnippet]) -> None:
        self._snippets = tuple(snippets)

    def __len__(self) -> int:
        return len(self._snippets)

    def __getitem__(self, index):  # Sequence protocol
        if isinstance(index, slice):
            return ContextWindow(self._snippets[index])
        return self._snippets[index]

    def __iter__(self) -> Iterator[EvidenceSnippet]:
        return iter(self._snippets)

    def fingerprint(self) -> int:
        """Order-sensitive identity of the window.

        Two windows with the same snippets in a different order have
        different fingerprints — the mechanism behind order sensitivity.
        """
        parts: list[object] = ["ctx"]
        for snippet in self._snippets:
            parts.append(snippet.url)
            parts.append(snippet.text)
            # Stance maps matter too: ESI changes stances, not URLs.
            for entity_id in sorted(snippet.entity_stance):
                parts.append(entity_id)
                parts.append(round(snippet.entity_stance[entity_id], 6))
        return derive_seed(*parts)

    def support(self, entity_id: str) -> list[tuple[int, EvidenceSnippet]]:
        """(position, snippet) pairs mentioning ``entity_id``, in order."""
        return [
            (position, snippet)
            for position, snippet in enumerate(self._snippets)
            if snippet.supports(entity_id)
        ]

    def supported_entities(self) -> set[str]:
        """All entity ids with at least one supporting snippet."""
        entities: set[str] = set()
        for snippet in self._snippets:
            entities.update(snippet.entity_stance)
        return entities

    def mention_count(self) -> int:
        """Total entity mentions across snippets (redundancy numerator)."""
        return sum(len(s.entity_stance) for s in self._snippets)

    def reordered(self, order: Sequence[int]) -> "ContextWindow":
        """A window with snippets permuted by ``order``."""
        if sorted(order) != list(range(len(self._snippets))):
            raise ValueError("order must be a permutation of snippet positions")
        return ContextWindow(self._snippets[i] for i in order)
