"""Answer-text synthesis for the generative engines.

The comparative analyses in Section 2 consume citations, not prose, but
the engines are real answer engines: they return synthesized text with
inline source attributions, which the examples and the freshness pipeline
(which follows cited URLs) exercise end to end.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.entities.catalog import EntityCatalog
from repro.webgraph.pages import Page

__all__ = ["synthesize_answer"]


def synthesize_answer(
    query: str,
    sources: Sequence[Page],
    catalog: EntityCatalog,
    ranked_entities: Sequence[str] = (),
    max_listed: int = 10,
) -> str:
    """Compose a short synthesized answer from selected sources.

    When ``ranked_entities`` is supplied the answer leads with the ranked
    list (a ranking-query answer); otherwise it summarizes what the
    sources cover.  Source attributions use bracketed indices in citation
    order, the style the commercial engines emit.
    """
    if max_listed < 1:
        raise ValueError("max_listed must be at least 1")
    lines = [f"Answer to: {query}"]
    if ranked_entities:
        lines.append("")
        for position, entity_id in enumerate(ranked_entities[:max_listed], start=1):
            name = catalog.get(entity_id).name if entity_id in catalog else entity_id
            supporting = [
                index
                for index, page in enumerate(sources, start=1)
                if page.mentions(entity_id)
            ]
            attribution = (
                " " + "".join(f"[{i}]" for i in supporting[:2]) if supporting else ""
            )
            lines.append(f"{position}. {name}{attribution}")
    elif sources:
        lines.append("")
        lines.append(
            "Based on "
            + ", ".join(f"[{i}] {page.domain}" for i, page in enumerate(sources, start=1))
            + "."
        )
    if sources:
        lines.append("")
        lines.append("Sources:")
        for index, page in enumerate(sources, start=1):
            lines.append(f"[{index}] {page.title} — {page.url}")
    return "\n".join(lines)
