"""Source-typology classification (the GPT-4o-as-judge stand-in).

Section 2.2: "Using GPT-4o classification, we categorize sources" into
brand / earned / social.  The reproduction replaces the LLM judge with a
deterministic classifier over the same observable features — the domain
name and, when available, the page content.  Like the LLM judge it is
imperfect by design: it relies on a platform lexicon and structural cues,
not on the registry's ground truth (tests measure its accuracy against
that ground truth instead).
"""

from __future__ import annotations

from repro.webgraph.domains import SourceType
from repro.webgraph.pages import Page

__all__ = ["SourceTypeClassifier"]


# Platforms any web-scale model knows are user-generated content.
_SOCIAL_PLATFORMS = frozenset(
    {
        "reddit.com", "youtube.com", "quora.com", "x.com", "twitter.com",
        "facebook.com", "instagram.com", "tiktok.com", "pinterest.com",
        "stackexchange.com", "stackoverflow.com", "medium.com",
        "tripadvisor.com", "flyertalk.com", "discord.com", "twitch.tv",
    }
)

# Large retailers (owned media) any web-scale model recognizes.
_RETAIL_PLATFORMS = frozenset(
    {
        "amazon.com", "bestbuy.com", "walmart.com", "target.com",
        "newegg.com", "ebay.com", "cars.com", "autotrader.com",
        "carvana.com", "sephora.com", "ulta.com", "expedia.com",
        "booking.com", "kayak.com", "zappos.com", "roadrunnersports.com",
        "etsy.com", "wayfair.com",
    }
)

_SOCIAL_BODY_CUES = ("commenters", "thread", "upvote", "replies", "posted by")
_BRAND_TITLE_CUES = ("official", "buy ", "deals and availability", "explore")
_EARNED_TITLE_CUES = ("review", "vs", "best", "guide", "tested", "compared", "announc")


class SourceTypeClassifier:
    """Deterministic brand/earned/social classifier."""

    def classify_domain(self, domain: str) -> SourceType:
        """Classify from the domain name alone.

        Platform lexicons catch the big social and retail sites; anything
        else defaults to earned (the majority class for cited sources).
        """
        name = domain.lower()
        if name in _SOCIAL_PLATFORMS:
            return SourceType.SOCIAL
        if name in _RETAIL_PLATFORMS:
            return SourceType.BRAND
        if any(cue in name for cue in ("forum", "community", "board")):
            return SourceType.SOCIAL
        return SourceType.EARNED

    def classify(self, domain: str, page: Page | None = None) -> SourceType:
        """Classify a cited source, using page content when available.

        Page cues refine the domain-only guess: thread-style bodies mark
        social UGC; promotional titles and single-subject product pages
        whose subject matches the domain mark owned/brand media.
        """
        name = domain.lower()
        if name in _SOCIAL_PLATFORMS:
            return SourceType.SOCIAL
        if name in _RETAIL_PLATFORMS:
            return SourceType.BRAND
        if page is not None:
            body = page.body.lower()
            title = page.title.lower()
            if any(cue in body for cue in _SOCIAL_BODY_CUES):
                return SourceType.SOCIAL
            if any(cue in title for cue in _BRAND_TITLE_CUES):
                return SourceType.BRAND
            if self._domain_matches_subject(name, page):
                return SourceType.BRAND
            if any(cue in title for cue in _EARNED_TITLE_CUES):
                return SourceType.EARNED
        return self.classify_domain(domain)

    @staticmethod
    def _domain_matches_subject(domain: str, page: Page) -> bool:
        """Whether the domain looks like the page's primary subject's site.

        "toyota.com" hosting a page about Toyota is owned media; the check
        compares the registrable label with the leading words of the
        page's title (the subject), tolerating punctuation.
        """
        label = domain.split(".")[0].replace("-", "")
        if len(label) < 3:
            return False
        title_head = "".join(
            ch for ch in page.title.lower()[: len(label) + 8] if ch.isalnum()
        )
        return title_head.startswith(label) or label in title_head
