"""The simulated LLM: ranking, pairwise judgment, grounding, citation.

The score model (Section 5 of DESIGN.md) is a confidence-weighted blend of
the pre-training prior and the context evidence:

``score(e) = (w_p * prior + w_c * evidence) / (w_p + w_c) + noise``

with ``w_p = prior_weight * confidence(e)`` and
``w_c = context_weight * (1 - confidence(e))``.  Every stochastic draw is
derived from the call's identity (seed, query, *ordered* context
fingerprint, entity), so the model is deterministic yet order-sensitive —
the property the snippet-shuffle experiment probes.

Grounding modes:

* **NORMAL** — priors active; evidence is read with *limited attention*
  (snippet weight decays exponentially with position, and weakly-attended
  evidence is discounted against the prior), plus entity-level generation
  noise derived from the ordered context fingerprint.  Reordering the
  context therefore changes both what the model effectively reads and its
  noise realization — the snippet-shuffle phenomenon.
* **STRICT** — priors off, attention uniform (the model is instructed to
  aggregate the provided snippets and nothing else).  Residual noise per
  entity grows with the *conflict* among its many supporting snippets;
  single-source entities are summarized deterministically, and entities
  the context never mentions are ordered independently of it.  This is
  the mechanism behind Table 1's strict column (popular 1.52 vs niche
  0.46).

Pairwise judgments share the holistic ranking's per-entity noise
realization (the model's idiosyncratic read of this context carries over),
re-realize vague priors per call, and add judgment noise that scales with
the pair's unfamiliarity and, in strict mode, its evidence sparsity —
Table 2's tau structure.

Citations: a ranked entity is cited only when some snippet supports it;
entities promoted from the prior alone surface uncited — Table 3's
citation misses.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from collections.abc import Sequence

from repro.llm.context import ContextWindow
from repro.llm.pretraining import PretrainedKnowledge
from repro.llm.rng import derive_rng

__all__ = ["GroundingMode", "LLMConfig", "RankedAnswer", "SimulatedLLM"]


class GroundingMode(enum.Enum):
    """Prompting regimes from Section 3.1."""

    NORMAL = "normal"  # priors + snippets
    STRICT = "strict"  # "restrict reasoning to provided snippets only"


@dataclass(frozen=True)
class LLMConfig:
    """Behavioural parameters of the simulacrum.

    Defaults are the calibrated values documented in
    :mod:`repro.core.calibration`.
    """

    seed: int = 0
    prior_weight: float = 1.0
    context_weight: float = 1.0
    attention_decay: float = 1.03
    attention_half_weight: float = 1.5
    gen_noise_normal: float = 0.139
    gen_noise_strict: float = 0.004
    conflict_noise: float = 1.38
    pair_noise: float = 0.0085
    pair_noise_vague: float = 0.556
    strict_pair_noise: float = 1.035
    unsupported_floor: float = 0.18

    def __post_init__(self) -> None:
        for name in (
            "prior_weight", "context_weight", "attention_decay",
            "attention_half_weight",
            "gen_noise_normal", "gen_noise_strict", "conflict_noise",
            "pair_noise", "pair_noise_vague", "strict_pair_noise",
            "unsupported_floor",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.prior_weight + self.context_weight == 0:
            raise ValueError("prior_weight and context_weight cannot both be zero")


@dataclass(frozen=True)
class RankedAnswer:
    """The model's answer to a ranking query.

    ``ranking`` is best-first.  ``citations`` maps each ranked entity to
    the URLs of its supporting snippets (empty tuple = citation miss).
    """

    query: str
    mode: GroundingMode
    ranking: tuple[str, ...]
    scores: dict[str, float]
    citations: dict[str, tuple[str, ...]]

    def rank_of(self, entity_id: str) -> int:
        """1-based rank; raises ``ValueError`` if absent."""
        return self.ranking.index(entity_id) + 1

    def uncited_entities(self) -> list[str]:
        """Ranked entities with no snippet support (prior-injected)."""
        return [e for e in self.ranking if not self.citations.get(e)]


class SimulatedLLM:
    """Deterministic, order-sensitive entity ranker with priors."""

    def __init__(self, knowledge: PretrainedKnowledge, config: LLMConfig | None = None) -> None:
        self._knowledge = knowledge
        self._config = config or LLMConfig()

    @property
    def config(self) -> LLMConfig:
        return self._config

    @property
    def knowledge(self) -> PretrainedKnowledge:
        return self._knowledge

    # ------------------------------------------------------------------
    # Evidence aggregation

    def _evidence(
        self,
        entity_id: str,
        context: ContextWindow,
        mode: GroundingMode,
    ) -> tuple[float, float] | None:
        """Aggregate snippet stances into (estimate, attention_mass).

        Returns ``None`` when no snippet supports the entity.

        NORMAL mode models limited attention: snippet weight decays
        exponentially with position (``exp(-decay * position)``), so an
        entity whose only mention sits late in the window is barely
        registered — reordering the context changes what the model
        effectively reads, which is the entire snippet-shuffle phenomenon.
        The returned attention mass (total weight, in units where the
        first position is 1.0) lets the caller discount weakly-attended
        evidence.

        STRICT mode is instructed aggregation: every position weighs 1.0
        and the mass is the support count.
        """
        support = context.support(entity_id)
        if not support:
            return None
        total_weight = 0.0
        total = 0.0
        for position, snippet in support:
            if mode is GroundingMode.NORMAL:
                weight = math.exp(-self._config.attention_decay * position)
            else:
                weight = 1.0
            total += weight * snippet.entity_stance[entity_id]
            total_weight += weight
        stance = total / total_weight  # in [-1, 1]
        return (stance + 1.0) / 2.0, total_weight

    def _strict_noise_sigma(self, entity_id: str, context: ContextWindow) -> float:
        """Strict-mode per-entity noise grows with evidence *conflict*.

        Summarizing the single page that mentions a niche firm is
        deterministic; reconciling several mildly disagreeing reviews of a
        famous product leaves residual ambiguity.  The noise scale is the
        dispersion of the supporting stances, damped for tiny support
        counts — Table 1's strict column (popular 1.52 vs niche 0.46)
        falls out of coverage concentration.
        """
        stances = [s.entity_stance[entity_id] for __, s in context.support(entity_id)]
        if len(stances) < 2:
            return self._config.gen_noise_strict
        mean = sum(stances) / len(stances)
        variance = sum((s - mean) ** 2 for s in stances) / (len(stances) - 1)
        damping = min(1.0, max(0.0, (len(stances) - 3) / 3.0))
        # Scaled by prior confidence: the ambiguity comes from the model's
        # own latent knowledge interfering with conflicting evidence.  An
        # entity it knows nothing about is read literally, however many
        # snippets mention it.
        confidence = self._knowledge.confidence(entity_id)
        return (
            self._config.gen_noise_strict
            + self._config.conflict_noise
            * math.sqrt(variance)
            * damping
            * confidence
        )

    # ------------------------------------------------------------------
    # Holistic ranking

    def score_entity(
        self,
        query: str,
        entity_id: str,
        context: ContextWindow,
        mode: GroundingMode,
        candidate_count: int,
    ) -> float:
        """The blended score used for holistic ranking."""
        belief = self._knowledge.belief(entity_id)
        evidence = self._evidence(entity_id, context, mode)
        noise_rng = derive_rng(
            "gen", self._config.seed, query, context.fingerprint(), entity_id, mode.value
        )

        if mode is GroundingMode.STRICT:
            if evidence is None:
                # Unsupported entities sink to the bottom.  Their relative
                # order comes from the prior plus context-independent noise:
                # the context says nothing about them, so reordering or
                # rewriting it cannot move them against each other.
                base = self._config.unsupported_floor * belief.mean
                floor_rng = derive_rng(
                    "gen-unsupported", self._config.seed, query, entity_id
                )
                return base + floor_rng.gauss(0.0, self._config.gen_noise_strict)
            base = evidence[0]
            sigma = self._strict_noise_sigma(entity_id, context)
            return base + noise_rng.gauss(0.0, sigma)

        w_prior = self._config.prior_weight * belief.confidence
        if evidence is None:
            blended = belief.mean
        else:
            value, attention_mass = evidence
            # Weakly-attended evidence counts for less: the context weight
            # saturates in the attention mass actually spent on the entity.
            mass_factor = attention_mass / (
                attention_mass + self._config.attention_half_weight
            )
            w_context = (
                self._config.context_weight * (1.0 - belief.confidence) * mass_factor
            )
            if w_prior + w_context == 0.0:
                blended = value
            else:
                blended = (w_prior * belief.mean + w_context * value) / (
                    w_prior + w_context
                )
        return blended + noise_rng.gauss(0.0, self._config.gen_noise_normal)

    def rank_entities(
        self,
        query: str,
        candidates: Sequence[str],
        context: ContextWindow,
        mode: GroundingMode = GroundingMode.NORMAL,
        top_k: int | None = None,
    ) -> RankedAnswer:
        """Produce the holistic ranking ``R`` with citations.

        ``top_k`` truncates the output ranking (the query's "Top N"); the
        default ranks every candidate.
        """
        if not candidates:
            raise ValueError("at least one candidate entity is required")
        if len(set(candidates)) != len(candidates):
            raise ValueError("candidate entities must be unique")
        scores = {
            entity_id: self.score_entity(query, entity_id, context, mode, len(candidates))
            for entity_id in candidates
        }
        ordered = sorted(candidates, key=lambda e: (-scores[e], e))
        if top_k is not None:
            if top_k < 1:
                raise ValueError("top_k must be at least 1")
            ordered = ordered[:top_k]

        citations = {}
        for entity_id in ordered:
            urls = tuple(s.url for __, s in context.support(entity_id)[:2])
            citations[entity_id] = urls
        return RankedAnswer(
            query=query,
            mode=mode,
            ranking=tuple(ordered),
            scores=scores,
            citations=citations,
        )

    # ------------------------------------------------------------------
    # Pairwise judgment

    def pairwise_judge(
        self,
        query: str,
        entity_a: str,
        entity_b: str,
        context: ContextWindow,
        mode: GroundingMode = GroundingMode.NORMAL,
    ) -> str:
        """"Between a and b, which is better ... given the same documents?"

        Each call is an independent judgment whose noise scales with how
        *unfamiliar* the pair is: judgments between well-represented
        entities are crisp and repeatable, judgments between obscure ones
        fluctuate (Section 3.3.2: "the model lacks stable internal
        hierarchies, fluctuating in per-comparison judgments").  In NORMAL
        mode the prior is additionally *re-realized* from its uncertainty
        per call.  In STRICT mode each entity's score is the same
        evidence-plus-noise quantity the holistic ranking used, so for
        familiar, well-covered candidates the pairwise tournament
        reproduces the holistic order exactly (Table 2's tau = 1.0 cell).
        The pair's RNG is symmetric in (a, b): the model gives one answer
        per unordered pair.
        """
        if entity_a == entity_b:
            raise ValueError("pairwise judgment requires two distinct entities")
        first, second = sorted((entity_a, entity_b))
        call_rng = derive_rng(
            "pair", self._config.seed, query, context.fingerprint(),
            first, second, mode.value,
        )
        mean_conf = (
            self._knowledge.confidence(first) + self._knowledge.confidence(second)
        ) / 2.0

        def pair_score(entity_id: str) -> float:
            if mode is GroundingMode.STRICT:
                # Reuse the holistic scoring path (including its per-entity
                # noise realization) so the tournament is transitive for
                # well-evidenced candidates.
                return self.score_entity(query, entity_id, context, mode, 2)
            belief = self._knowledge.belief(entity_id)
            evidence = self._evidence(entity_id, context, mode)
            prior_draw = self._knowledge.sample_prior(entity_id, call_rng)
            # The per-entity generation noise is the same realization the
            # holistic ranking used (same derivation inputs): the model's
            # idiosyncratic read of this context carries over into its
            # pairwise judgments, so sharp-prior tournaments reproduce the
            # holistic order.
            entity_noise = derive_rng(
                "gen", self._config.seed, query, context.fingerprint(),
                entity_id, GroundingMode.NORMAL.value,
            ).gauss(0.0, self._config.gen_noise_normal)
            if evidence is None:
                return prior_draw + entity_noise
            value, attention_mass = evidence
            mass_factor = attention_mass / (
                attention_mass + self._config.attention_half_weight
            )
            w_prior = self._config.prior_weight * belief.confidence
            w_context = (
                self._config.context_weight * (1.0 - belief.confidence) * mass_factor
            )
            if w_prior + w_context == 0.0:
                return value + entity_noise
            blended = (w_prior * prior_draw + w_context * value) / (w_prior + w_context)
            return blended + entity_noise

        if mode is GroundingMode.STRICT:
            # Judgment noise scales with the pair's evidence sparsity: two
            # well-covered entities compare deterministically; a pair the
            # evidence barely touches is close to a coin flip.
            min_support = min(
                len(context.support(first)), len(context.support(second))
            )
            sparsity = max(0.0, 1.0 - min_support / 2.0)
            sigma = self._config.strict_pair_noise * sparsity * (1.0 - mean_conf) ** 2
        else:
            # Quadratic scaling: judgments between familiar entities are
            # crisp; unfamiliarity compounds.
            sigma = self._config.pair_noise + self._config.pair_noise_vague * (
                (1.0 - mean_conf) ** 2
            )
        score_first = pair_score(first)
        score_second = pair_score(second)
        margin = score_first - score_second + call_rng.gauss(0.0, sigma)
        if margin > 0:
            return first
        if margin < 0:
            return second
        return first if call_rng.random() < 0.5 else second
