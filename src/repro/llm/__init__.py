"""The language-model simulacrum.

The paper's Section 3 dissects how a deterministic LLM (gpt-4o,
temperature 0) blends **pre-training priors** with **retrieved evidence**
when ranking entities.  This package makes that blend an explicit,
seeded mechanism:

* :mod:`repro.llm.pretraining` — per-entity priors whose precision grows
  with corpus exposure (the pre-training proxy).
* :mod:`repro.llm.context` — the context window: ordered evidence
  snippets with per-entity support, plus an order-sensitive fingerprint
  (temperature-0 models are still sensitive to context order; the
  fingerprint-seeded noise reproduces exactly that).
* :mod:`repro.llm.model` — :class:`SimulatedLLM`: holistic ranking,
  pairwise judgments, grounding modes, citation emission.
* :mod:`repro.llm.classify` — the GPT-4o-as-classifier stand-in for
  brand/earned/social typology.
"""

from repro.llm.classify import SourceTypeClassifier
from repro.llm.context import ContextWindow, EvidenceSnippet
from repro.llm.model import GroundingMode, LLMConfig, RankedAnswer, SimulatedLLM
from repro.llm.pretraining import PretrainedKnowledge
from repro.llm.rng import derive_rng

__all__ = [
    "ContextWindow",
    "EvidenceSnippet",
    "GroundingMode",
    "LLMConfig",
    "PretrainedKnowledge",
    "RankedAnswer",
    "SimulatedLLM",
    "SourceTypeClassifier",
    "derive_rng",
]
