"""Deterministic RNG derivation.

The paper runs gpt-4o "with deterministic settings": the same prompt and
context always yield the same answer, yet *reordering the context changes
the answer* (that is the whole point of the snippet-shuffle experiment).
We reproduce this by deriving every stochastic draw from a SHA-256 hash of
the call's full identity — model seed, query, ordered context fingerprint,
entity, channel.  Identical calls are bit-identical; any change to the
context (including pure reordering) re-rolls the noise, exactly like a
temperature-0 transformer whose logits shift with token positions.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_rng", "derive_seed"]


def derive_seed(*components: object) -> int:
    """A 64-bit seed from the hash of the stringified components.

    Components are joined with an unambiguous length-prefixed encoding so
    ``("ab", "c")`` and ``("a", "bc")`` derive different seeds.
    """
    hasher = hashlib.sha256()
    for component in components:
        text = str(component).encode("utf-8")
        hasher.update(str(len(text)).encode("ascii"))
        hasher.update(b":")
        hasher.update(text)
        hasher.update(b"|")
    return int.from_bytes(hasher.digest()[:8], "big")


def derive_rng(*components: object) -> random.Random:
    """A ``random.Random`` seeded from :func:`derive_seed`."""
    return random.Random(derive_seed(*components))
