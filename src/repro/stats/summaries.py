"""Distribution summaries for article-age analysis (Figure 4).

The paper reports both median article ages and full age distributions per
engine and vertical.  These helpers are deliberately dependency-light; numpy
is avoided so property-based tests can compare against exact arithmetic.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = [
    "DistributionSummary",
    "histogram",
    "mean",
    "median",
    "quantile",
    "summarize",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence is undefined")
    return sum(values) / len(values)


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (the 'linear' / type-7 definition).

    ``q`` must lie in ``[0, 1]``.  Matches ``numpy.quantile``'s default so
    results can be cross-checked.
    """
    if not values:
        raise ValueError("quantile of empty sequence is undefined")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile level must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper or ordered[lower] == ordered[upper]:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


def median(values: Sequence[float]) -> float:
    """Median via the interpolated quantile at 0.5."""
    return quantile(values, 0.5)


def histogram(
    values: Sequence[float],
    bin_edges: Sequence[float],
) -> list[int]:
    """Counts per bin for explicit, strictly increasing ``bin_edges``.

    Bins are half-open ``[edge[i], edge[i+1])`` except the last, which is
    closed on the right (so the maximum lands in the final bin).  Values
    outside the edges are ignored — figure reproduction clips to the
    plotted range, just as the paper's plots do.
    """
    if len(bin_edges) < 2:
        raise ValueError("histogram needs at least two bin edges")
    edges = list(bin_edges)
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValueError("bin edges must be strictly increasing")
    counts = [0] * (len(edges) - 1)
    lo, hi = edges[0], edges[-1]
    for v in values:
        if v < lo or v > hi:
            continue
        if v == hi:
            counts[-1] += 1
            continue
        # Binary search for the containing bin.
        left, right = 0, len(edges) - 1
        while right - left > 1:
            mid = (left + right) // 2
            if v < edges[mid]:
                right = mid
            else:
                left = mid
        counts[left] += 1
    return counts


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a sample, plus mean and count."""

    count: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    p90: float
    maximum: float

    def iqr(self) -> float:
        """Interquartile range."""
        return self.p75 - self.p25


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Build a :class:`DistributionSummary` from a non-empty sample."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(float(v) for v in values)
    return DistributionSummary(
        count=len(ordered),
        mean=mean(ordered),
        minimum=ordered[0],
        p25=quantile(ordered, 0.25),
        median=quantile(ordered, 0.5),
        p75=quantile(ordered, 0.75),
        p90=quantile(ordered, 0.9),
        maximum=ordered[-1],
    )
