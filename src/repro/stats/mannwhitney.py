"""Mann-Whitney U test (two-sided, normal approximation with tie correction).

Figure 4 claims AI engines cite *newer* pages than Google.  Medians show
the direction; the U test quantifies whether two age distributions could
plausibly be the same.  Implemented from scratch (scipy is the test
oracle), using the large-sample normal approximation with tie correction
and continuity correction — the standard formulation for samples of the
size the study produces (dozens to hundreds of ages per engine).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["MannWhitneyResult", "mann_whitney_u", "rank_with_ties"]


def rank_with_ties(values: Sequence[float]) -> list[float]:
    """Midranks of ``values`` (ties share the average of their ranks)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = midrank
        i = j + 1
    return ranks


@dataclass(frozen=True)
class MannWhitneyResult:
    """Test outcome."""

    u_statistic: float  # U for the first sample
    z_score: float
    p_value: float      # two-sided
    n_first: int
    n_second: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the two-sided p-value falls below ``alpha``."""
        return self.p_value < alpha


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal via erfc."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_whitney_u(
    first: Sequence[float], second: Sequence[float]
) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test between two independent samples.

    Uses the normal approximation with tie and continuity corrections;
    accurate for n >= ~8 per side, which every Figure 4 comparison
    satisfies.  Raises ``ValueError`` on empty samples or when every
    observation is identical (the statistic is undefined).
    """
    n1, n2 = len(first), len(second)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")

    combined = list(first) + list(second)
    ranks = rank_with_ties(combined)
    rank_sum_first = sum(ranks[:n1])
    u_first = rank_sum_first - n1 * (n1 + 1) / 2.0

    mean_u = n1 * n2 / 2.0
    # Tie correction to the variance.
    n = n1 + n2
    tie_counts: dict[float, int] = {}
    for value in combined:
        tie_counts[value] = tie_counts.get(value, 0) + 1
    tie_term = sum(t ** 3 - t for t in tie_counts.values())
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0:
        raise ValueError("degenerate samples: all observations identical")

    # Continuity correction toward the mean.
    delta = u_first - mean_u
    if delta > 0:
        delta -= 0.5
    elif delta < 0:
        delta += 0.5
    z = delta / math.sqrt(variance)
    p = 2.0 * _normal_sf(abs(z))
    return MannWhitneyResult(
        u_statistic=u_first,
        z_score=z,
        p_value=min(1.0, p),
        n_first=n1,
        n_second=n2,
    )
