"""Nonparametric bootstrap confidence intervals.

The paper reports point aggregates (mean overlaps, median ages, mean rank
deviations).  The reproduction attaches percentile-bootstrap confidence
intervals so readers can judge whether shape-level claims (e.g. "GPT-4o's
overlap is lowest") are stable under resampling.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.stats.summaries import quantile

__all__ = ["BootstrapResult", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    def width(self) -> float:
        """Width of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval (inclusive)."""
        return self.low <= value <= self.high


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[Sequence[float]], float],
    *,
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> BootstrapResult:
    """Percentile bootstrap CI for ``statistic`` over ``sample``.

    Parameters
    ----------
    sample:
        The observed sample (non-empty).
    statistic:
        Any function of a sample, e.g. ``repro.stats.median``.
    confidence:
        Interval mass, in ``(0, 1)``.
    resamples:
        Number of bootstrap resamples.
    seed:
        Seed for the resampling RNG; results are fully deterministic.
    """
    if not sample:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError("resamples must be positive")

    # A leaf statistical utility parameterized by an explicit caller seed:
    # deterministic by construction, so the derive_seed discipline is the
    # caller's job, not this function's.
    rng = random.Random(seed)  # detlint: ignore[DET001]
    data = list(sample)
    n = len(data)
    estimates = []
    for _ in range(resamples):
        resample = [data[rng.randrange(n)] for _ in range(n)]
        estimates.append(float(statistic(resample)))

    alpha = 1.0 - confidence
    return BootstrapResult(
        estimate=float(statistic(data)),
        low=quantile(estimates, alpha / 2.0),
        high=quantile(estimates, 1.0 - alpha / 2.0),
        confidence=confidence,
        resamples=resamples,
    )
