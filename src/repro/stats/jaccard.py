"""Set-overlap measures for cited-domain analysis (Figures 1 and 2).

The paper normalizes every cited URL to its registrable domain and computes
the Jaccard overlap between each AI engine's domain set and Google's top-10
domain set, averaged over queries.  It also reports a *unique-domain ratio*
(how many of the domains cited across a query set are cited by only one
system) and cross-model overlap.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from itertools import combinations

__all__ = [
    "jaccard",
    "overlap_coefficient",
    "mean_pairwise_jaccard",
    "unique_ratio",
]


def jaccard(a: Iterable[Hashable], b: Iterable[Hashable]) -> float:
    """Jaccard similarity ``|A ∩ B| / |A ∪ B|``.

    Two empty sets are defined to have overlap ``0.0`` — a query for which
    an engine cited nothing contributes no evidence of agreement, matching
    how the paper averages per-query overlaps.
    """
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def overlap_coefficient(a: Iterable[Hashable], b: Iterable[Hashable]) -> float:
    """Szymkiewicz–Simpson coefficient ``|A ∩ B| / min(|A|, |B|)``.

    More forgiving than Jaccard when the two systems cite very different
    numbers of sources; used as a secondary diagnostic.
    """
    set_a, set_b = set(a), set(b)
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def mean_pairwise_jaccard(sets: Sequence[Iterable[Hashable]]) -> float:
    """Average Jaccard overlap over all unordered pairs of the given sets.

    Used for the cross-model overlap statistic in Section 2.1 (the paper
    reports a slight cross-model overlap increase on niche queries).
    Returns ``0.0`` when fewer than two sets are supplied.
    """
    frozen = [set(s) for s in sets]
    if len(frozen) < 2:
        return 0.0
    pairs = list(combinations(frozen, 2))
    return sum(jaccard(a, b) for a, b in pairs) / len(pairs)


def unique_ratio(sets: Sequence[Iterable[Hashable]]) -> float:
    """Fraction of all observed items that appear in exactly one set.

    The paper's *unique-domain ratio*: with five systems each citing a set
    of domains per query, the ratio of domains cited by only one system
    measures ecosystem fragmentation (74.2% popular -> 68.6% niche).
    Returns ``0.0`` when nothing was observed at all.
    """
    counts: dict[Hashable, int] = {}
    for s in sets:
        # dict.fromkeys deduplicates while preserving the input order, so
        # nothing here ever iterates a set (PYTHONHASHSEED-independent).
        for item in dict.fromkeys(s):
            counts[item] = counts.get(item, 0) + 1
    if not counts:
        return 0.0
    unique = sum(1 for c in counts.values() if c == 1)
    return unique / len(counts)
