"""Kendall's tau rank-correlation coefficient.

The paper (Section 3.1) quantifies the consistency between a one-shot
holistic ranking ``R`` and a pairwise-derived ranking ``R'`` with Kendall's
tau.  We implement the tau-b variant (tie-corrected), which reduces to the
classical tau-a when there are no ties.  Pairwise win counts routinely
produce ties, so the tie correction matters for Table 2.

The implementation is O(n log n): concordant/discordant pairs are counted
through a merge-sort inversion count after sorting by the first variable.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Sequence

__all__ = ["kendall_tau", "kendall_tau_rankings"]


def _count_inversions(values: list[float]) -> int:
    """Count inversions (pairs ``i < j`` with ``values[i] > values[j]``).

    Uses an iterative bottom-up merge sort so deep recursion is never an
    issue; ties are *not* counted as inversions.
    """
    n = len(values)
    inversions = 0
    width = 1
    src = list(values)
    buf = [0.0] * n
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                if src[i] <= src[j]:
                    buf[k] = src[i]
                    i += 1
                else:
                    buf[k] = src[j]
                    inversions += mid - i
                    j += 1
                k += 1
            while i < mid:
                buf[k] = src[i]
                i += 1
                k += 1
            while j < hi:
                buf[k] = src[j]
                j += 1
                k += 1
        src, buf = buf, src
        width *= 2
    return inversions


def _tie_pair_count(values: Sequence[float]) -> int:
    """Number of pairs tied on ``values``."""
    counts: dict[float, int] = {}
    for v in values:
        counts[v] = counts.get(v, 0) + 1
    return sum(c * (c - 1) // 2 for c in counts.values())


def _joint_tie_pair_count(xs: Sequence[float], ys: Sequence[float]) -> int:
    """Number of pairs tied on both variables simultaneously."""
    counts: dict[tuple[float, float], int] = {}
    for pair in zip(xs, ys):
        counts[pair] = counts.get(pair, 0) + 1
    return sum(c * (c - 1) // 2 for c in counts.values())


def kendall_tau(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Kendall's tau-b between two paired score sequences.

    Parameters
    ----------
    xs, ys:
        Paired observations.  Higher scores mean "ranked better"; only the
        induced orderings matter.

    Returns
    -------
    float
        Tau-b in ``[-1, 1]``.  Returns ``0.0`` when either variable is
        constant (the coefficient is undefined; zero is the conventional
        "no information" value and what downstream aggregation expects).

    Raises
    ------
    ValueError
        If the sequences differ in length or have fewer than two items.
    """
    if len(xs) != len(ys):
        raise ValueError(
            f"paired sequences must match in length: {len(xs)} != {len(ys)}"
        )
    n = len(xs)
    if n < 2:
        raise ValueError("kendall_tau requires at least two observations")

    total_pairs = n * (n - 1) // 2
    ties_x = _tie_pair_count(xs)
    ties_y = _tie_pair_count(ys)
    ties_xy = _joint_tie_pair_count(xs, ys)

    denom_x = total_pairs - ties_x
    denom_y = total_pairs - ties_y
    if denom_x == 0 or denom_y == 0:
        return 0.0

    # Sort by x ascending, breaking x-ties by y ascending.  Then pairs
    # discordant in the tau sense are exactly the inversions of the y
    # sequence, excluding pairs tied on x (which the tie-break ordering
    # guarantees are never counted as inversions) and pairs tied on y.
    order = sorted(range(n), key=lambda i: (xs[i], ys[i]))
    y_sorted = [float(ys[i]) for i in order]
    discordant = _count_inversions(y_sorted)

    # Pairs tied on y but not on x are neither concordant nor discordant.
    concordant = total_pairs - ties_x - ties_y + ties_xy - discordant

    return (concordant - discordant) / math.sqrt(denom_x * denom_y)


def kendall_tau_rankings(
    ranking_a: Sequence[Hashable], ranking_b: Sequence[Hashable]
) -> float:
    """Kendall's tau between two rankings given as ordered item sequences.

    ``ranking_a`` and ``ranking_b`` must contain the same items (each exactly
    once).  Position 0 is the best rank.

    This is the form used for Table 2: ``R`` is the holistic ranking and
    ``R'`` the pairwise-derived one.
    """
    if len(ranking_a) != len(ranking_b):
        raise ValueError("rankings must contain the same number of items")
    pos_b = {item: i for i, item in enumerate(ranking_b)}
    if len(pos_b) != len(ranking_b):
        raise ValueError("ranking_b contains duplicate items")
    if set(ranking_a) != set(pos_b):
        raise ValueError("rankings must contain identical item sets")
    # Scores are negated positions so "earlier in the list" means "higher".
    xs = [-float(i) for i in range(len(ranking_a))]
    ys = [-float(pos_b[item]) for item in ranking_a]
    return kendall_tau(xs, ys)
