"""Statistical utilities used throughout the reproduction.

Everything in this package is implemented from scratch (``scipy`` is used
only inside the test suite, as an oracle).  The paper's metrics are:

* Kendall's tau between a holistic ranking and a pairwise-derived ranking
  (:mod:`repro.stats.kendall`, used in Table 2),
* Jaccard overlap between cited-domain sets (:mod:`repro.stats.jaccard`,
  used in Figures 1 and 2),
* medians / quantiles / histograms of article-age distributions
  (:mod:`repro.stats.summaries`, used in Figure 4),
* bootstrap confidence intervals for reported aggregates
  (:mod:`repro.stats.bootstrap`).
"""

from repro.stats.bootstrap import BootstrapResult, bootstrap_ci
from repro.stats.jaccard import (
    jaccard,
    mean_pairwise_jaccard,
    overlap_coefficient,
    unique_ratio,
)
from repro.stats.kendall import kendall_tau, kendall_tau_rankings
from repro.stats.mannwhitney import MannWhitneyResult, mann_whitney_u
from repro.stats.summaries import (
    DistributionSummary,
    histogram,
    mean,
    median,
    quantile,
    summarize,
)

__all__ = [
    "BootstrapResult",
    "DistributionSummary",
    "bootstrap_ci",
    "histogram",
    "jaccard",
    "kendall_tau",
    "kendall_tau_rankings",
    "MannWhitneyResult",
    "mann_whitney_u",
    "mean",
    "mean_pairwise_jaccard",
    "median",
    "overlap_coefficient",
    "quantile",
    "summarize",
    "unique_ratio",
]
