"""Seeded query generators for every experiment's workload.

The paper evaluates:

* 1,000 ranking-style queries over ten consumer topics (Figure 1),
* 200 entity-comparison queries, 100 popular / 100 niche (Figure 2),
* 300 consumer-electronics queries across three intents (Figure 3),
* curated ranking queries in electronics + automotive (Figure 4),
* popular and niche ranking queries for the perturbation study
  (Tables 1-2) and SUV ranking queries for Table 3.

All generators are pure functions of their seed.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.entities.catalog import EntityCatalog
from repro.entities.intents import INTENT_TEMPLATES, Intent
from repro.entities.verticals import CONSUMER_TOPICS, get_vertical

__all__ = [
    "PopularityClass",
    "Query",
    "QueryKind",
    "comparison_queries",
    "intent_queries",
    "ranking_queries",
]


class QueryKind(enum.Enum):
    """The three query shapes the study uses."""

    RANKING = "ranking"        # "Top 10 most reliable smartphones"
    COMPARISON = "comparison"  # "Apple or Samsung"
    INTENT = "intent"          # intent-typed consumer queries (Figure 3)


class PopularityClass(enum.Enum):
    """Whether the query targets popular or niche entities."""

    POPULAR = "popular"
    NICHE = "niche"


_RANKING_SUFFIXES = (
    "in 2025",
    "this year",
    "this season",
    "right now",
    "to buy in 2025",
    "",
)


@dataclass(frozen=True)
class Query:
    """A single evaluation query.

    ``entities`` carries the focal entity ids: the compared pair for
    comparison queries, the ranked candidate pool for ranking queries used
    in Section 3 (where the perturbation harness needs a fixed candidate
    set), empty otherwise.
    """

    id: str
    text: str
    kind: QueryKind
    vertical: str
    intent: Intent | None = None
    entities: tuple[str, ...] = ()
    popularity_class: PopularityClass | None = None
    top_k: int = 10
    tokens_hint: tuple[str, ...] = field(default=(), compare=False)
    #: Precomputed memoization key over every identity-bearing field
    #: (``tokens_hint`` excluded, matching dataclass equality).  A string
    #: so CPython caches its hash: the engines' answer memos hit this key
    #: once per (query, engine, arm) and the repr of the field tuple is
    #: injective for these field types.
    cache_key: str = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.text.strip():
            raise ValueError("query text must be non-empty")
        if self.top_k < 1:
            raise ValueError("top_k must be at least 1")
        get_vertical(self.vertical)
        object.__setattr__(
            self,
            "cache_key",
            repr(
                (
                    self.id, self.text, self.kind, self.vertical,
                    self.intent, self.entities, self.popularity_class,
                    self.top_k,
                )
            ),
        )


def _class_for_vertical(vertical_id: str, niche_entities: bool) -> PopularityClass:
    if get_vertical(vertical_id).is_niche or niche_entities:
        return PopularityClass.NICHE
    return PopularityClass.POPULAR


def ranking_queries(
    catalog: EntityCatalog,
    verticals: Sequence[str] = CONSUMER_TOPICS,
    count: int = 1000,
    seed: int = 0,
    *,
    niche_entities: bool = False,
    id_prefix: str = "rq",
) -> list[Query]:
    """Generate ranking-style queries spread evenly over ``verticals``.

    With ``niche_entities=True`` the candidate pool is the vertical's
    niche tail (used for the Section 3 niche-entity conditions); otherwise
    it is the popular core.  Verticals that lack the requested pool fall
    back to all their entities.
    """
    if count < 1:
        raise ValueError("count must be positive")
    if not verticals:
        raise ValueError("at least one vertical is required")
    rng = random.Random(seed)
    queries = []
    for i in range(count):
        vertical_id = verticals[i % len(verticals)]
        vertical = get_vertical(vertical_id)
        qualifier = rng.choice(vertical.qualifiers)
        suffix = rng.choice(_RANKING_SUFFIXES)
        top_n = rng.choice((5, 8, 10, 10, 10))
        text = f"Top {top_n} {qualifier} {vertical.noun}"
        if suffix:
            text = f"{text} {suffix}"

        if niche_entities:
            pool = catalog.niche(vertical_id) or catalog.in_vertical(vertical_id)
        else:
            pool = catalog.popular(vertical_id) or catalog.in_vertical(vertical_id)
        candidates = tuple(e.id for e in pool)

        queries.append(
            Query(
                id=f"{id_prefix}-{i:04d}",
                text=text,
                kind=QueryKind.RANKING,
                vertical=vertical_id,
                entities=candidates,
                popularity_class=_class_for_vertical(vertical_id, niche_entities),
                top_k=min(top_n, len(candidates)) if candidates else top_n,
                tokens_hint=(qualifier,),
            )
        )
    return queries


_COMPARISON_TEMPLATES_POPULAR = (
    "{a} or {b}",
    "{a} vs {b}: which is better?",
    "{a} or {b} — which should I choose?",
    "Comparing {a} and {b}",
)

_COMPARISON_TEMPLATES_NICHE = (
    "{a} or {b} for {keyword}",
    "{a} vs {b} for {keyword}",
    "{a} or {b}: best for {keyword}?",
)


def comparison_queries(
    catalog: EntityCatalog,
    n_popular: int = 100,
    n_niche: int = 100,
    seed: int = 0,
    *,
    niche_verticals: Sequence[str] | None = None,
) -> list[Query]:
    """Generate the Figure 2 workload: popular and niche entity pairs.

    Popular pairs come from the popular cores of the consumer topics
    ("Apple or Samsung"); niche pairs come from niche entity pools —
    either the consumer topics' niche tails or dedicated niche verticals —
    and are qualified with a topical keyword, mirroring the paper's
    "Garmin or Coros for ultramarathon training" example.
    """
    rng = random.Random(seed)
    queries = []

    popular_verticals = [v for v in CONSUMER_TOPICS if len(catalog.popular(v)) >= 2]
    if not popular_verticals and n_popular:
        raise ValueError("no vertical has two popular entities")
    for i in range(n_popular):
        vertical_id = popular_verticals[i % len(popular_verticals)]
        a, b = rng.sample(catalog.popular(vertical_id), 2)
        template = rng.choice(_COMPARISON_TEMPLATES_POPULAR)
        queries.append(
            Query(
                id=f"cq-pop-{i:03d}",
                text=template.format(a=a.name, b=b.name),
                kind=QueryKind.COMPARISON,
                vertical=vertical_id,
                entities=(a.id, b.id),
                popularity_class=PopularityClass.POPULAR,
            )
        )

    if niche_verticals is None:
        niche_verticals = [v for v in catalog.verticals() if len(catalog.niche(v)) >= 2]
    niche_pool = [v for v in niche_verticals if len(catalog.niche(v)) >= 2]
    if not niche_pool and n_niche:
        raise ValueError("no vertical has two niche entities")
    for i in range(n_niche):
        vertical_id = niche_pool[i % len(niche_pool)]
        vertical = get_vertical(vertical_id)
        a, b = rng.sample(catalog.niche(vertical_id), 2)
        template = rng.choice(_COMPARISON_TEMPLATES_NICHE)
        keyword = rng.choice(vertical.keywords)
        queries.append(
            Query(
                id=f"cq-nic-{i:03d}",
                text=template.format(a=a.name, b=b.name, keyword=keyword),
                kind=QueryKind.COMPARISON,
                vertical=vertical_id,
                entities=(a.id, b.id),
                popularity_class=PopularityClass.NICHE,
            )
        )

    return queries


def intent_queries(
    catalog: EntityCatalog,
    verticals: Sequence[str] = ("smartphones", "laptops", "smartwatches"),
    count: int = 300,
    seed: int = 0,
) -> list[Query]:
    """Generate the Figure 3 workload: intent-typed electronics queries.

    The count is split evenly across the three intents (remainders go to
    the earlier intents, matching a 100/100/100 split at ``count=300``).
    """
    if count < 3:
        raise ValueError("count must be at least 3 (one per intent)")
    rng = random.Random(seed)
    intents = list(Intent)
    queries = []
    for i in range(count):
        intent = intents[i % len(intents)]
        vertical_id = verticals[(i // len(intents)) % len(verticals)]
        vertical = get_vertical(vertical_id)
        pool = catalog.in_vertical(vertical_id)
        entity = rng.choice(pool) if pool else None
        template = rng.choice(INTENT_TEMPLATES[intent])
        text = template.format(
            noun=vertical.noun,
            keyword=rng.choice(vertical.keywords),
            entity=entity.name if entity else vertical.noun,
        )
        queries.append(
            Query(
                id=f"iq-{i:03d}",
                text=text,
                kind=QueryKind.INTENT,
                vertical=vertical_id,
                intent=intent,
                entities=(entity.id,) if entity else (),
                popularity_class=PopularityClass.POPULAR,
            )
        )
    return queries
