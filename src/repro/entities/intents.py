"""Query-intent taxonomy.

Section 2.2 types queries as informational ("How does Wi-Fi 7 work?"),
consideration ("Best laptops for students") and transactional ("Buy iPhone
15"), and shows that AI engines shift their source composition across
intents far more sharply than Google does.
"""

from __future__ import annotations

import enum

__all__ = ["Intent", "INTENT_TEMPLATES"]


class Intent(enum.Enum):
    """The paper's three-way intent taxonomy."""

    INFORMATIONAL = "informational"
    CONSIDERATION = "consideration"
    TRANSACTIONAL = "transactional"


# Query templates per intent.  ``{noun}`` is the vertical's plural noun,
# ``{entity}`` an entity name, ``{keyword}`` a vertical keyword.
INTENT_TEMPLATES: dict[Intent, tuple[str, ...]] = {
    Intent.INFORMATIONAL: (
        "How does {keyword} work in {noun}?",
        "What is {keyword} and why does it matter for {noun}?",
        "How to choose {noun} based on {keyword}",
        "What makes {entity} {noun} different?",
        "Explain {keyword} in modern {noun}",
    ),
    Intent.CONSIDERATION: (
        "Best {noun} for students",
        "Best {noun} for professionals in 2025",
        "Top rated {noun} this year",
        "{entity} alternatives worth considering",
        "Is {entity} worth it compared to other {noun}?",
    ),
    Intent.TRANSACTIONAL: (
        "Buy {entity} online",
        "{entity} best price deals",
        "Where to buy {entity} today",
        "{entity} discount and availability",
        "Order {entity} with fast shipping",
    ),
}
