"""Entity catalog with popularity and quality latents.

Two latent variables drive the paper's Section 3 phenomena:

* **popularity** — a proxy for pre-training exposure: how much text about
  the entity a web-scale pre-training corpus contains.  The corpus
  generator scales per-entity page counts by it, and the simulated LLM's
  prior precision grows with it.
* **true_quality** — the entity's actual merit for its vertical's canonical
  ranking question.  Editorial pages take stances correlated with it, and
  the LLM's prior is a noisy estimate of it.

Both are on ``[0, 1]``.  The split into popular vs. niche entities (the
axis of Figure 2 and Tables 1-2) is by popularity threshold.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.entities.verticals import get_vertical

__all__ = ["Entity", "EntityCatalog", "POPULARITY_THRESHOLD", "build_default_catalog"]


# Entities at or above this popularity are "popular"; below, "niche".
POPULARITY_THRESHOLD = 0.55


@dataclass(frozen=True)
class Entity:
    """One ranked/compared entity (a brand, product line, or firm)."""

    id: str
    name: str
    vertical: str
    popularity: float
    true_quality: float
    brand_domain: str | None = None
    aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.popularity <= 1.0:
            raise ValueError(f"popularity must be in [0, 1], got {self.popularity}")
        if not 0.0 <= self.true_quality <= 1.0:
            raise ValueError(f"true_quality must be in [0, 1], got {self.true_quality}")
        get_vertical(self.vertical)  # validates the vertical id

    @property
    def is_popular(self) -> bool:
        """Popular vs. niche split used throughout Sections 2-3."""
        return self.popularity >= POPULARITY_THRESHOLD

    def surface_forms(self) -> tuple[str, ...]:
        """All names under which pages may mention the entity."""
        return (self.name, *self.aliases)


class EntityCatalog:
    """Id-unique, insertion-ordered collection of entities."""

    def __init__(self, entities: Iterable[Entity] = ()) -> None:
        self._by_id: dict[str, Entity] = {}
        self._by_vertical: dict[str, list[Entity]] = {}
        for entity in entities:
            self.add(entity)

    def add(self, entity: Entity) -> None:
        if entity.id in self._by_id:
            raise ValueError(f"entity id {entity.id!r} already in catalog")
        self._by_id[entity.id] = entity
        self._by_vertical.setdefault(entity.vertical, []).append(entity)

    def get(self, entity_id: str) -> Entity:
        try:
            return self._by_id[entity_id]
        except KeyError:
            raise KeyError(f"unknown entity {entity_id!r}") from None

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._by_id.values())

    def in_vertical(self, vertical_id: str) -> list[Entity]:
        """Entities in a vertical, insertion-ordered (empty if none)."""
        return list(self._by_vertical.get(vertical_id, []))

    def popular(self, vertical_id: str | None = None) -> list[Entity]:
        """Popular entities, optionally restricted to one vertical."""
        pool = self.in_vertical(vertical_id) if vertical_id else list(self)
        return [e for e in pool if e.is_popular]

    def niche(self, vertical_id: str | None = None) -> list[Entity]:
        """Niche entities, optionally restricted to one vertical."""
        pool = self.in_vertical(vertical_id) if vertical_id else list(self)
        return [e for e in pool if not e.is_popular]

    def verticals(self) -> list[str]:
        """Vertical ids that have at least one entity."""
        return list(self._by_vertical)


def _entity(
    vertical: str,
    name: str,
    popularity: float,
    quality: float,
    domain: str | None,
    aliases: tuple[str, ...] = (),
) -> Entity:
    slug = name.lower().replace(" ", "_").replace("&", "and").replace("'", "")
    return Entity(
        id=f"{vertical}:{slug}",
        name=name,
        vertical=vertical,
        popularity=popularity,
        true_quality=quality,
        brand_domain=domain,
        aliases=aliases,
    )


def build_default_catalog() -> EntityCatalog:
    """The study's entity population.

    Popularity values are calibrated so each consumer vertical has a core
    of high-exposure brands and a tail of niche ones, and the SUV vertical
    reproduces Table 3's citation-coverage gradient (Toyota/Honda high,
    Cadillac/Infiniti low).
    """
    catalog = EntityCatalog()

    # --- Smartphones.
    for args in [
        ("Apple", 0.99, 0.92, "apple.com", ("iPhone",)),
        ("Samsung", 0.97, 0.90, "samsung.com", ("Galaxy",)),
        ("Google", 0.95, 0.86, "google.com", ("Pixel",)),
        ("OnePlus", 0.72, 0.80, "oneplus.com"),
        ("Xiaomi", 0.70, 0.76, "mi.com"),
        ("Motorola", 0.68, 0.70, "motorola.com"),
        ("Sony", 0.75, 0.74, "sony.com", ("Xperia",)),
        ("Nothing", 0.45, 0.72, "nothing.tech"),
        ("Asus", 0.58, 0.73, "asus.com", ("ROG Phone",)),
        ("Fairphone", 0.25, 0.66, "fairphone.com"),
        ("Honor", 0.38, 0.68, "honor.com"),
    ]:
        catalog.add(_entity("smartphones", *args))

    # --- Laptops.
    for args in [
        ("Apple MacBook", 0.98, 0.93, "apple.com", ("MacBook",)),
        ("Dell", 0.93, 0.86, "dell.com", ("XPS",)),
        ("Lenovo", 0.91, 0.85, "lenovo.com", ("ThinkPad",)),
        ("HP", 0.90, 0.80, "hp.com", ("Spectre",)),
        ("Asus Laptops", 0.78, 0.81, "asus.com", ("ZenBook",)),
        ("Acer", 0.72, 0.72, "acer.com"),
        ("Microsoft Surface", 0.85, 0.79, "microsoft.com", ("Surface",)),
        ("Razer", 0.60, 0.74, "razer.com"),
        ("Framework", 0.35, 0.78, "frame.work"),
        ("LG Gram", 0.48, 0.73, "lg.com", ("Gram",)),
        ("Samsung Galaxy Book", 0.66, 0.74, "samsung.com", ("Galaxy Book",)),
    ]:
        catalog.add(_entity("laptops", *args))

    # --- Smartwatches.
    for args in [
        ("Apple Watch", 0.98, 0.91, "apple.com", ("Watch Ultra",)),
        ("Samsung Galaxy Watch", 0.90, 0.84, "samsung.com", ("Galaxy Watch",)),
        ("Garmin", 0.82, 0.90, "garmin.com", ("Fenix", "Forerunner")),
        ("Fitbit", 0.84, 0.72, "fitbit.com"),
        ("Google Pixel Watch", 0.80, 0.76, "google.com", ("Pixel Watch",)),
        ("Amazfit", 0.45, 0.68, "amazfit.com"),
        ("Coros", 0.35, 0.84, "coros.com", ("Vertix", "Pace")),
        ("Polar", 0.48, 0.78, "polar.com", ("Vantage",)),
        ("Suunto", 0.40, 0.76, "suunto.com"),
        ("Withings", 0.38, 0.70, "withings.com"),
        ("Mobvoi", 0.22, 0.62, "mobvoi.com", ("TicWatch",)),
    ]:
        catalog.add(_entity("smartwatches", *args))

    # --- Electric cars.
    for args in [
        ("Tesla", 0.99, 0.82, "tesla.com", ("Model 3", "Model Y")),
        ("Hyundai EV", 0.85, 0.86, "hyundai.com", ("Ioniq",)),
        ("Kia EV", 0.83, 0.85, "kia.com", ("EV6", "EV9")),
        ("Ford EV", 0.88, 0.76, "ford.com", ("Mustang Mach-E",)),
        ("Chevrolet EV", 0.82, 0.75, "chevrolet.com", ("Bolt", "Equinox EV")),
        ("BMW EV", 0.87, 0.83, "bmw.com", ("i4", "iX")),
        ("Rivian", 0.62, 0.80, "rivian.com", ("R1T", "R1S")),
        ("Lucid", 0.50, 0.81, "lucidmotors.com", ("Air",)),
        ("Polestar", 0.52, 0.78, "polestar.com"),
        ("Volkswagen EV", 0.80, 0.72, "vw.com", ("ID.4",)),
        ("Nissan EV", 0.78, 0.70, "nissanusa.com", ("Leaf", "Ariya")),
        ("Fisker", 0.28, 0.48, "fiskerinc.com", ("Ocean",)),
    ]:
        catalog.add(_entity("electric_cars", *args))

    # --- SUVs (Table 3's citation-coverage gradient lives here).
    for args in [
        ("Toyota", 0.99, 0.92, "toyota.com", ("RAV4", "Highlander")),
        ("Honda", 0.97, 0.90, "honda.com", ("CR-V", "Pilot")),
        ("Kia", 0.76, 0.85, "kia.com", ("Telluride", "Sorento")),
        ("Hyundai", 0.86, 0.84, "hyundai.com", ("Tucson", "Palisade")),
        ("Chevrolet", 0.74, 0.74, "chevrolet.com", ("Tahoe", "Traverse")),
        ("Ford", 0.90, 0.76, "ford.com", ("Explorer", "Bronco")),
        ("Mazda", 0.76, 0.86, "mazdausa.com", ("CX-5", "CX-90")),
        ("Subaru", 0.82, 0.85, "subaru.com", ("Outback", "Forester")),
        ("Jeep", 0.85, 0.68, "jeep.com", ("Grand Cherokee",)),
        ("Nissan", 0.83, 0.72, "nissanusa.com", ("Rogue", "Pathfinder")),
        ("Cadillac", 0.47, 0.73, "cadillac.com", ("XT5", "Escalade")),
        ("Infiniti", 0.42, 0.69, "infiniti.com", ("QX60",)),
        ("Genesis", 0.46, 0.82, "genesis.com", ("GV70", "GV80")),
        ("Lincoln", 0.48, 0.74, "lincoln.com", ("Aviator",)),
        ("Buick", 0.50, 0.70, "buick.com", ("Enclave",)),
        ("Acura", 0.58, 0.79, "acura.com", ("MDX", "RDX")),
    ]:
        catalog.add(_entity("suvs", *args))

    # --- Athletic shoes.
    for args in [
        ("Nike", 0.99, 0.85, "nike.com", ("Pegasus", "Vaporfly")),
        ("Adidas", 0.97, 0.84, "adidas.com", ("Ultraboost", "Adizero")),
        ("New Balance", 0.88, 0.86, "newbalance.com"),
        ("Asics", 0.85, 0.88, "asics.com", ("Gel-Kayano", "Novablast")),
        ("Brooks", 0.78, 0.89, "brooksrunning.com", ("Ghost", "Glycerin")),
        ("Hoka", 0.80, 0.87, "hoka.com", ("Clifton", "Speedgoat")),
        ("Saucony", 0.68, 0.84, "saucony.com", ("Endorphin",)),
        ("On Running", 0.70, 0.78, "on.com", ("Cloudmonster",)),
        ("Altra", 0.42, 0.79, "altrarunning.com", ("Lone Peak",)),
        ("Topo Athletic", 0.25, 0.75, "topoathletic.com"),
        ("Mizuno", 0.50, 0.80, "mizunousa.com", ("Wave Rider",)),
    ]:
        catalog.add(_entity("athletic_shoes", *args))

    # --- Skin care.
    for args in [
        ("CeraVe", 0.92, 0.86, "cerave.com"),
        ("La Roche-Posay", 0.88, 0.88, "laroche-posay.us"),
        ("Neutrogena", 0.93, 0.76, "neutrogena.com"),
        ("The Ordinary", 0.86, 0.82, "theordinary.com"),
        ("Cetaphil", 0.87, 0.78, "cetaphil.com"),
        ("SkinCeuticals", 0.66, 0.90, "skinceuticals.com"),
        ("Paula's Choice", 0.64, 0.87, "paulaschoice.com"),
        ("Olay", 0.90, 0.74, "olay.com"),
        ("Drunk Elephant", 0.62, 0.75, "drunkelephant.com"),
        ("Supergoop", 0.48, 0.81, "supergoop.com"),
        ("Stratia", 0.18, 0.79, "stratiaskin.com"),
        ("Naturium", 0.32, 0.77, "naturium.com"),
    ]:
        catalog.add(_entity("skincare", *args))

    # --- Streaming services.
    for args in [
        ("Netflix", 0.99, 0.85, "netflix.com"),
        ("Disney+", 0.95, 0.82, "disneyplus.com", ("Disney Plus",)),
        ("Max", 0.88, 0.84, "max.com", ("HBO Max",)),
        ("Amazon Prime Video", 0.94, 0.78, "amazon.com", ("Prime Video",)),
        ("Hulu", 0.90, 0.79, "hulu.com"),
        ("Apple TV+", 0.86, 0.83, "apple.com", ("Apple TV Plus",)),
        ("Paramount+", 0.78, 0.70, "paramountplus.com"),
        ("Peacock", 0.74, 0.68, "peacocktv.com"),
        ("Crunchyroll", 0.60, 0.80, "crunchyroll.com"),
        ("Mubi", 0.28, 0.78, "mubi.com"),
        ("Criterion Channel", 0.24, 0.84, "criterionchannel.com"),
        ("Tubi", 0.56, 0.66, "tubitv.com"),
    ]:
        catalog.add(_entity("streaming", *args))

    # --- Airlines.
    for args in [
        ("Delta", 0.95, 0.86, "delta.com", ("Delta Air Lines",)),
        ("United", 0.93, 0.78, "united.com", ("United Airlines",)),
        ("American Airlines", 0.92, 0.72, "aa.com"),
        ("Southwest", 0.90, 0.77, "southwest.com"),
        ("JetBlue", 0.80, 0.75, "jetblue.com"),
        ("Alaska Airlines", 0.74, 0.84, "alaskaair.com"),
        ("Emirates", 0.85, 0.90, "emirates.com"),
        ("Singapore Airlines", 0.78, 0.93, "singaporeair.com"),
        ("Qatar Airways", 0.76, 0.92, "qatarairways.com"),
        ("Air Canada", 0.72, 0.70, "aircanada.com"),
        ("Breeze Airways", 0.30, 0.68, "flybreeze.com"),
        ("French Bee", 0.15, 0.64, "frenchbee.com"),
    ]:
        catalog.add(_entity("airlines", *args))

    # --- Hotels.
    for args in [
        ("Marriott", 0.94, 0.83, "marriott.com"),
        ("Hilton", 0.93, 0.82, "hilton.com"),
        ("Hyatt", 0.85, 0.86, "hyatt.com"),
        ("IHG", 0.80, 0.76, "ihg.com", ("Holiday Inn",)),
        ("Four Seasons", 0.82, 0.94, "fourseasons.com"),
        ("Ritz-Carlton", 0.84, 0.93, "ritzcarlton.com"),
        ("Accor", 0.70, 0.75, "accor.com"),
        ("Wyndham", 0.72, 0.66, "wyndhamhotels.com"),
        ("Best Western", 0.75, 0.64, "bestwestern.com"),
        ("Aman", 0.40, 0.95, "aman.com"),
        ("Graduate Hotels", 0.22, 0.74, "graduatehotels.com"),
        ("citizenM", 0.28, 0.78, "citizenm.com"),
    ]:
        catalog.add(_entity("hotels", *args))

    # --- Credit cards.
    for args in [
        ("Chase Sapphire", 0.94, 0.89, "chase.com", ("Sapphire Preferred", "Sapphire Reserve")),
        ("Amex Gold", 0.92, 0.87, "americanexpress.com", ("American Express Gold",)),
        ("Amex Platinum", 0.91, 0.84, "americanexpress.com", ("American Express Platinum",)),
        ("Capital One Venture", 0.88, 0.85, "capitalone.com", ("Venture X",)),
        ("Citi Double Cash", 0.82, 0.80, "citi.com"),
        ("Discover it", 0.84, 0.78, "discover.com"),
        ("Wells Fargo Active Cash", 0.74, 0.77, "wellsfargo.com"),
        ("Bank of America Customized Cash", 0.72, 0.72, "bankofamerica.com"),
        ("Bilt Mastercard", 0.46, 0.83, "biltrewards.com", ("Bilt",)),
        ("Apple Card", 0.86, 0.74, "apple.com"),
        ("US Bank Altitude", 0.38, 0.76, "usbank.com", ("Altitude Reserve",)),
    ]:
        catalog.add(_entity("credit_cards", *args))

    # --- Niche vertical: Toronto family law firms (all synthetic, all niche).
    for args in [
        ("Hargrave Family Law", 0.10, 0.88, "hargravefamilylaw.ca"),
        ("Lakeside Law Group", 0.12, 0.84, "lakesidelaw.ca"),
        ("Bloor Street Legal", 0.09, 0.80, "bloorstreetlegal.ca"),
        ("Chen & Osei LLP", 0.11, 0.86, "chenosei.ca"),
        ("Yorkville Family Lawyers", 0.13, 0.78, "yorkvillefamilylaw.ca"),
        ("Harbourfront Legal", 0.08, 0.75, "harbourfrontlegal.ca"),
        ("Meridian Family Law", 0.10, 0.82, "meridianfamilylaw.ca"),
        ("Parkdale Law Office", 0.07, 0.72, "parkdalelaw.ca"),
        ("Rosedale Legal Partners", 0.12, 0.85, "rosedalelegal.ca"),
        ("Junction Family Law", 0.06, 0.70, "junctionfamilylaw.ca"),
        ("Kingsway Legal Group", 0.09, 0.77, "kingswaylegal.ca"),
        ("Danforth Family Advocates", 0.08, 0.81, "danforthadvocates.ca"),
        ("Leslieville Law Chambers", 0.07, 0.74, "leslievillelaw.ca"),
        ("Annex Family Counsel", 0.11, 0.83, "annexfamilycounsel.ca"),
    ]:
        catalog.add(_entity("family_law_toronto", *args))

    # --- Niche vertical: ultramarathon training watches.
    for args in [
        ("Garmin Enduro", 0.40, 0.90, "garmin.com", ("Enduro",)),
        ("Coros Vertix", 0.30, 0.88, "coros.com", ("Vertix 2",)),
        ("Suunto Vertical", 0.26, 0.82, "suunto.com"),
        ("Polar Grit X", 0.28, 0.80, "polar.com", ("Grit X Pro",)),
        ("Garmin Fenix Pro", 0.44, 0.87, "garmin.com", ("Fenix 8",)),
        ("Apple Watch Ultra Trail", 0.50, 0.72, "apple.com", ("Watch Ultra 2",)),
        ("Amazfit T-Rex", 0.20, 0.70, "amazfit.com", ("T-Rex Ultra",)),
        ("Coros Apex Pro", 0.24, 0.84, "coros.com", ("Apex 2 Pro",)),
        ("Suunto Race", 0.22, 0.79, "suunto.com"),
        ("Polar Pacer Pro Trail", 0.18, 0.74, "polar.com"),
        ("Garmin Instinct Tactix", 0.32, 0.81, "garmin.com", ("Instinct",)),
        ("COROS Dura", 0.14, 0.76, "coros.com"),
        ("Wahoo Elemnt Rival", 0.16, 0.66, "wahoofitness.com", ("Elemnt Rival",)),
        ("Casio Pro Trek Ultra", 0.15, 0.64, "casio.com", ("Pro Trek",)),
    ]:
        catalog.add(_entity("ultrarunning_gear", *args))

    # --- Niche vertical: home espresso machines for latte art.
    for args in [
        ("Breville Dual Boiler", 0.42, 0.86, "breville.com", ("BES920",)),
        ("Rancilio Silvia", 0.30, 0.80, "ranciliogroup.com", ("Silvia Pro",)),
        ("Lelit Bianca", 0.18, 0.90, "lelit.com", ("Bianca V3",)),
        ("Profitec Pro", 0.16, 0.87, "profitec-espresso.com", ("Pro 700",)),
        ("Gaggia Classic", 0.34, 0.76, "gaggia.com", ("Classic Pro",)),
        ("La Marzocco Linea Micra", 0.26, 0.92, "lamarzocco.com", ("Linea Micra",)),
        ("ECM Synchronika", 0.14, 0.89, "ecm.de", ("Synchronika",)),
        ("Flair 58", 0.12, 0.74, "flairespresso.com"),
        ("Ascaso Steel Duo", 0.13, 0.82, "ascaso.com", ("Steel Duo",)),
        ("Bezzera BZ10", 0.10, 0.78, "bezzera.it", ("BZ10",)),
        ("Quick Mill Vetrano", 0.09, 0.80, "quickmill.it", ("Vetrano",)),
        ("Sanremo Cube", 0.08, 0.83, "sanremomachines.com", ("Cube",)),
        ("Decent DE1 Pro", 0.17, 0.88, "decentespresso.com", ("DE1",)),
        ("Breville Bambino Plus", 0.38, 0.72, "breville.com", ("Bambino",)),
    ]:
        catalog.add(_entity("espresso_gear", *args))

    return catalog
