"""Vertical (topic) definitions.

The paper's Figure 1 evaluates ranking queries "spanning ten consumer
topics": smartphones, athletic shoes, skin care, electric cars, streaming
services, laptops, airlines, hotels, credit cards, and smartwatches.
Figure 4 and Tables 1-3 additionally use the automotive vertical (SUV
queries), and Section 3 contrasts popular topics with niche ones (Toronto
family law, ultramarathon gear).  Each vertical carries the topical
vocabulary used for query and corpus generation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "CONSUMER_TOPICS",
    "ELECTRONICS_VERTICALS",
    "AUTOMOTIVE_VERTICALS",
    "NICHE_VERTICALS",
    "Vertical",
    "VerticalGroup",
    "all_verticals",
    "get_vertical",
]


class VerticalGroup(enum.Enum):
    """Coarse grouping used by the freshness analysis (Figure 4)."""

    CONSUMER_ELECTRONICS = "consumer_electronics"
    AUTOMOTIVE = "automotive"
    TRAVEL = "travel"
    FINANCE = "finance"
    BEAUTY = "beauty"
    SPORTS = "sports"
    MEDIA = "media"
    NICHE_SERVICES = "niche_services"


@dataclass(frozen=True)
class Vertical:
    """One topic area.

    Attributes
    ----------
    id:
        Stable slug used across the codebase.
    name:
        Human-readable name.
    group:
        Coarse grouping (drives Figure 4's two verticals).
    noun:
        Plural noun used in query templates ("smartphones").
    keywords:
        Topical vocabulary injected into page bodies and queries; this is
        what makes BM25 retrieval topical rather than random.
    qualifiers:
        Ranking-query qualifiers ("most reliable", "best budget", ...).
    is_niche:
        Whether the vertical as a whole is low-coverage (pre-training-poor).
    age_scale:
        Multiplier on domain age profiles for this vertical's pages —
        automotive publishing cycles are slower than electronics, which is
        why the paper's automotive ages run several times higher.
    """

    id: str
    name: str
    group: VerticalGroup
    noun: str
    keywords: tuple[str, ...]
    qualifiers: tuple[str, ...]
    is_niche: bool = False
    age_scale: float = 1.0


_VERTICALS: dict[str, Vertical] = {}


def _define(vertical: Vertical) -> Vertical:
    if vertical.id in _VERTICALS:
        raise ValueError(f"duplicate vertical id {vertical.id!r}")
    _VERTICALS[vertical.id] = vertical
    return vertical


SMARTPHONES = _define(
    Vertical(
        id="smartphones",
        name="Smartphones",
        group=VerticalGroup.CONSUMER_ELECTRONICS,
        noun="smartphones",
        keywords=(
            "smartphone", "phone", "camera", "battery", "display", "android",
            "ios", "chipset", "5g", "screen", "megapixel", "charging",
        ),
        qualifiers=(
            "most reliable", "best overall", "best camera", "best battery life",
            "best budget", "most durable", "best for photography",
        ),
    )
)

LAPTOPS = _define(
    Vertical(
        id="laptops",
        name="Laptops",
        group=VerticalGroup.CONSUMER_ELECTRONICS,
        noun="laptops",
        keywords=(
            "laptop", "notebook", "keyboard", "battery", "display", "cpu",
            "gpu", "ram", "ultrabook", "portability", "trackpad", "webcam",
        ),
        qualifiers=(
            "best overall", "best for students", "best for work",
            "best budget", "most reliable", "best battery life",
            "best for gaming",
        ),
    )
)

SMARTWATCHES = _define(
    Vertical(
        id="smartwatches",
        name="Smartwatches",
        group=VerticalGroup.CONSUMER_ELECTRONICS,
        noun="smartwatches",
        keywords=(
            "smartwatch", "watch", "fitness", "gps", "heart rate", "battery",
            "tracking", "sensor", "sleep", "workout", "notification",
        ),
        qualifiers=(
            "best overall", "best for fitness", "best battery life",
            "most accurate", "best budget", "best for running",
        ),
    )
)

ELECTRIC_CARS = _define(
    Vertical(
        id="electric_cars",
        name="Electric cars",
        group=VerticalGroup.AUTOMOTIVE,
        noun="electric cars",
        keywords=(
            "electric", "ev", "range", "charging", "battery", "car",
            "vehicle", "motor", "autopilot", "efficiency", "warranty",
        ),
        qualifiers=(
            "most reliable", "best overall", "longest range", "best value",
            "best budget", "safest",
        ),
        age_scale=3.6,
    )
)

SUVS = _define(
    Vertical(
        id="suvs",
        name="SUVs",
        group=VerticalGroup.AUTOMOTIVE,
        noun="SUVs",
        keywords=(
            "suv", "crossover", "cargo", "towing", "awd", "safety",
            "vehicle", "car", "mpg", "seating", "reliability", "family",
        ),
        qualifiers=(
            "best", "most reliable", "best for families", "safest",
            "best value", "best midsize", "best compact",
        ),
        age_scale=4.2,
    )
)

ATHLETIC_SHOES = _define(
    Vertical(
        id="athletic_shoes",
        name="Athletic shoes",
        group=VerticalGroup.SPORTS,
        noun="athletic shoes",
        keywords=(
            "shoe", "running", "cushioning", "sneaker", "trainer", "sole",
            "stability", "foam", "marathon", "grip", "fit",
        ),
        qualifiers=(
            "best overall", "best for running", "most comfortable",
            "best budget", "most durable", "best for marathons",
        ),
    )
)

SKINCARE = _define(
    Vertical(
        id="skincare",
        name="Skin care",
        group=VerticalGroup.BEAUTY,
        noun="skin care brands",
        keywords=(
            "skincare", "serum", "moisturizer", "spf", "retinol", "cleanser",
            "sunscreen", "hydration", "dermatologist", "ingredient",
        ),
        qualifiers=(
            "best overall", "best for sensitive skin", "most effective",
            "best budget", "best anti-aging", "dermatologist recommended",
        ),
    )
)

STREAMING = _define(
    Vertical(
        id="streaming",
        name="Streaming services",
        group=VerticalGroup.MEDIA,
        noun="streaming services",
        keywords=(
            "streaming", "shows", "movies", "subscription", "catalog",
            "originals", "4k", "price", "library", "series", "plan",
        ),
        qualifiers=(
            "best overall", "best value", "best for movies",
            "best for families", "best original content", "cheapest",
        ),
    )
)

AIRLINES = _define(
    Vertical(
        id="airlines",
        name="Airlines",
        group=VerticalGroup.TRAVEL,
        noun="airlines",
        keywords=(
            "airline", "flight", "seat", "legroom", "service", "baggage",
            "loyalty", "business class", "economy", "on-time", "lounge",
        ),
        qualifiers=(
            "best reviewed", "most reliable", "best business class",
            "best economy", "most on-time", "best loyalty program",
        ),
    )
)

HOTELS = _define(
    Vertical(
        id="hotels",
        name="Hotels",
        group=VerticalGroup.TRAVEL,
        noun="hotel chains",
        keywords=(
            "hotel", "resort", "room", "amenities", "loyalty", "suite",
            "breakfast", "location", "spa", "service", "points",
        ),
        qualifiers=(
            "best overall", "best luxury", "best value", "best loyalty program",
            "best for families", "best business",
        ),
    )
)

CREDIT_CARDS = _define(
    Vertical(
        id="credit_cards",
        name="Credit cards",
        group=VerticalGroup.FINANCE,
        noun="credit cards",
        keywords=(
            "credit card", "rewards", "cashback", "apr", "points", "travel",
            "annual fee", "signup bonus", "interest", "credit score",
        ),
        qualifiers=(
            "best overall", "best travel", "best cashback", "best no fee",
            "best for beginners", "best premium",
        ),
    )
)

# --- Niche verticals (sparse pre-training coverage by construction).

FAMILY_LAW_TORONTO = _define(
    Vertical(
        id="family_law_toronto",
        name="Family law firms in Toronto",
        group=VerticalGroup.NICHE_SERVICES,
        noun="family law firms in Toronto",
        keywords=(
            "law firm", "family law", "divorce", "custody", "toronto",
            "lawyer", "separation", "mediation", "support", "litigation",
        ),
        qualifiers=(
            "top", "best", "most experienced", "best reviewed",
        ),
        is_niche=True,
        age_scale=1.8,
    )
)

ULTRARUNNING_GEAR = _define(
    Vertical(
        id="ultrarunning_gear",
        name="Ultramarathon training watches",
        group=VerticalGroup.NICHE_SERVICES,
        noun="GPS watches for ultramarathon training",
        keywords=(
            "ultramarathon", "trail", "gps watch", "navigation", "elevation",
            "battery", "100 mile", "ultra", "training load", "mapping",
        ),
        qualifiers=(
            "best", "most accurate", "longest battery", "best value",
        ),
        is_niche=True,
    )
)

ESPRESSO_GEAR = _define(
    Vertical(
        id="espresso_gear",
        name="Home espresso machines for latte art",
        group=VerticalGroup.NICHE_SERVICES,
        noun="home espresso machines for latte art",
        keywords=(
            "espresso", "latte", "steam wand", "portafilter", "grinder",
            "pressure", "microfoam", "boiler", "barista", "extraction",
        ),
        qualifiers=(
            "best", "most consistent", "best value", "most reliable",
        ),
        is_niche=True,
    )
)


# The paper's ten consumer topics (Figure 1's query universe).
CONSUMER_TOPICS: tuple[str, ...] = (
    "smartphones",
    "athletic_shoes",
    "skincare",
    "electric_cars",
    "streaming",
    "laptops",
    "airlines",
    "hotels",
    "credit_cards",
    "smartwatches",
)

ELECTRONICS_VERTICALS: tuple[str, ...] = ("smartphones", "laptops", "smartwatches")
AUTOMOTIVE_VERTICALS: tuple[str, ...] = ("electric_cars", "suvs")
NICHE_VERTICALS: tuple[str, ...] = (
    "family_law_toronto",
    "ultrarunning_gear",
    "espresso_gear",
)


def all_verticals() -> list[Vertical]:
    """Every defined vertical, in definition order."""
    return list(_VERTICALS.values())


def get_vertical(vertical_id: str) -> Vertical:
    """Look up a vertical by id; raises ``KeyError`` with the known ids."""
    try:
        return _VERTICALS[vertical_id]
    except KeyError:
        known = ", ".join(sorted(_VERTICALS))
        raise KeyError(f"unknown vertical {vertical_id!r}; known: {known}") from None
