"""The subject matter of the study: verticals, entities and queries.

The paper queries five systems about consumer entities (smartphones,
airlines, SUVs, ...) across ten topics, splits entities into *popular*
(abundant pre-training data) and *niche* (scarce), and types queries by
intent (informational / consideration / transactional).  This package
provides the catalog and seeded query generators for all of that.
"""

from repro.entities.catalog import Entity, EntityCatalog, build_default_catalog
from repro.entities.intents import Intent
from repro.entities.queries import (
    PopularityClass,
    Query,
    QueryKind,
    comparison_queries,
    intent_queries,
    ranking_queries,
)
from repro.entities.verticals import (
    CONSUMER_TOPICS,
    Vertical,
    VerticalGroup,
    all_verticals,
    get_vertical,
)

__all__ = [
    "CONSUMER_TOPICS",
    "Entity",
    "EntityCatalog",
    "Intent",
    "PopularityClass",
    "Query",
    "QueryKind",
    "Vertical",
    "VerticalGroup",
    "all_verticals",
    "build_default_catalog",
    "comparison_queries",
    "get_vertical",
    "intent_queries",
    "ranking_queries",
]
