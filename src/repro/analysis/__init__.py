"""The paper's measurement pipeline.

One module per analysis axis:

* :mod:`repro.analysis.overlap` — domain-overlap statistics (Figures 1-2)
* :mod:`repro.analysis.typology` — source-type composition (Figure 3)
* :mod:`repro.analysis.freshness` — HTML date extraction and age
  distributions (Figure 4)
* :mod:`repro.analysis.perturbations` — SS / ESI / strict grounding
  sensitivity (Table 1)
* :mod:`repro.analysis.pairwise` — pairwise-derived rankings and Kendall
  tau consistency (Table 2)
* :mod:`repro.analysis.citations` — citation-miss rates (Table 3)
* :mod:`repro.analysis.rank_metrics` — shared ranking metrics
"""

from repro.analysis.citations import CitationMissReport, citation_miss_rates
from repro.analysis.freshness import (
    FreshnessReport,
    extract_publication_date,
    freshness_by_engine,
)
from repro.analysis.concentration import (
    ConcentrationReport,
    EngineConcentration,
    domain_concentration,
)
from repro.analysis.overlap import (
    OverlapReport,
    domain_overlap,
    domain_overlap_by_vertical,
    system_pair_overlap,
)
from repro.analysis.pairwise import PairwiseConsistency, pairwise_consistency
from repro.analysis.perturbations import (
    PerturbationKind,
    SensitivityResult,
    entity_swap_injection,
    sensitivity,
    snippet_shuffle,
)
from repro.analysis.rank_metrics import mean_absolute_rank_deviation
from repro.analysis.typology import TypologyReport, typology_by_intent

__all__ = [
    "CitationMissReport",
    "ConcentrationReport",
    "EngineConcentration",
    "FreshnessReport",
    "OverlapReport",
    "PairwiseConsistency",
    "PerturbationKind",
    "SensitivityResult",
    "TypologyReport",
    "citation_miss_rates",
    "domain_concentration",
    "domain_overlap",
    "domain_overlap_by_vertical",
    "entity_swap_injection",
    "extract_publication_date",
    "freshness_by_engine",
    "mean_absolute_rank_deviation",
    "pairwise_consistency",
    "sensitivity",
    "snippet_shuffle",
    "system_pair_overlap",
    "typology_by_intent",
]
