"""Freshness analysis: HTML date extraction and age distributions (Figure 4).

The paper "extract[s] page-level publication or update dates (HTML meta,
JSON-LD, <time> tags, and body text) to compute source age in days".  The
extractor below implements all four strategies against real HTML (the
corpus renders every page to a document; see :mod:`repro.webgraph.html`),
in the same precedence order a production crawler uses: structured
metadata first, prose last.  Pages that expose no date are counted as
extraction misses, not errors.
"""

from __future__ import annotations

import datetime as dt
import json
import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.engines.base import Answer
from repro.stats.summaries import DistributionSummary, median, summarize
from repro.webgraph.dates import StudyClock
from repro.webgraph.html import render_page

__all__ = ["FreshnessReport", "extract_publication_date", "freshness_by_engine"]


_META_RE = re.compile(
    r'<meta\s+(?:property|name|itemprop)=["\'](?:article:published_time|date|'
    r'og:published_time|og:updated_time|publish-date|publication[-_]date|'
    r'datePublished|dateModified|dc\.date(?:\.issued)?)["\']\s+'
    r'content=["\']([^"\']+)["\']',
    re.IGNORECASE,
)
_JSON_LD_RE = re.compile(
    r'<script[^>]*type=["\']application/ld\+json["\'][^>]*>(.*?)</script>',
    re.IGNORECASE | re.DOTALL,
)
_TIME_TAG_RE = re.compile(
    r'<time[^>]*\bdatetime=["\']([^"\']+)["\']', re.IGNORECASE
)
_TIME_TEXT_RE = re.compile(r"<time[^>]*>([^<]+)</time>", re.IGNORECASE)
_BODY_TEXT_RE = re.compile(
    r"(?:published|updated)\s+(?:on\s+)?"
    r"(January|February|March|April|May|June|July|August|September|October|"
    r"November|December)\s+(\d{1,2}),\s+(\d{4})",
    re.IGNORECASE,
)
_ISO_PREFIX_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})")

_MONTH_NUMBERS = {
    month: number
    for number, month in enumerate(
        (
            "january", "february", "march", "april", "may", "june", "july",
            "august", "september", "october", "november", "december",
        ),
        start=1,
    )
}


def _parse_iso_date(value: str) -> dt.date | None:
    match = _ISO_PREFIX_RE.match(value.strip())
    if not match:
        return None
    year, month, day = (int(g) for g in match.groups())
    try:
        return dt.date(year, month, day)
    except ValueError:
        return None


def _from_json_ld(blob: str) -> dt.date | None:
    try:
        payload = json.loads(blob)
    except json.JSONDecodeError:
        return None
    candidates = payload if isinstance(payload, list) else [payload]
    for item in candidates:
        if not isinstance(item, dict):
            continue
        for key in ("datePublished", "dateModified", "dateCreated"):
            value = item.get(key)
            if isinstance(value, str):
                parsed = _parse_iso_date(value)
                if parsed is not None:
                    return parsed
    return None


_HUMAN_DATE_RE = re.compile(
    r"(January|February|March|April|May|June|July|August|September|October|"
    r"November|December)\s+(\d{1,2}),\s+(\d{4})",
    re.IGNORECASE,
)


def _parse_human_date(text: str) -> dt.date | None:
    match = _HUMAN_DATE_RE.search(text)
    if not match:
        return None
    month_name, day, year = match.groups()
    try:
        return dt.date(int(year), _MONTH_NUMBERS[month_name.lower()], int(day))
    except ValueError:
        return None


def extract_publication_date(html: str) -> dt.date | None:
    """Extract a publication/update date from an HTML document.

    Tries, in order: ``<meta>`` publication tags (including Open Graph,
    Dublin Core and schema.org ``itemprop`` spellings), JSON-LD
    ``datePublished``, ``<time datetime=...>`` (ISO or human-readable),
    the ``<time>`` element's text, and body-text prose ("Published on
    March 3, 2025").  Returns ``None`` when nothing parseable is found.
    """
    meta = _META_RE.search(html)
    if meta:
        parsed = _parse_iso_date(meta.group(1))
        if parsed is not None:
            return parsed
    for blob in _JSON_LD_RE.findall(html):
        parsed = _from_json_ld(blob)
        if parsed is not None:
            return parsed
    time_tag = _TIME_TAG_RE.search(html)
    if time_tag:
        raw = time_tag.group(1)
        parsed = _parse_iso_date(raw) or _parse_human_date(raw)
        if parsed is not None:
            return parsed
    time_text = _TIME_TEXT_RE.search(html)
    if time_text:
        parsed = _parse_human_date(time_text.group(1))
        if parsed is not None:
            return parsed
    prose = _BODY_TEXT_RE.search(html)
    if prose:
        month_name, day, year = prose.groups()
        month = _MONTH_NUMBERS[month_name.lower()]
        try:
            return dt.date(int(year), month, int(day))
        except ValueError:
            return None
    return None


@dataclass(frozen=True)
class FreshnessReport:
    """Article-age statistics per engine for one vertical's workload."""

    vertical_group: str
    median_age_days: dict[str, float]
    age_summary: dict[str, DistributionSummary]
    ages: dict[str, list[int]]
    extraction_rate: dict[str, float]

    def ordered_by_median(self) -> list[tuple[str, float]]:
        """(engine, median age) pairs, freshest first."""
        return sorted(self.median_age_days.items(), key=lambda kv: kv[1])


def freshness_by_engine(
    answers_by_system: Mapping[str, Sequence[Answer]],
    clock: StudyClock,
    vertical_group: str = "",
    max_links_per_answer: int = 10,
) -> FreshnessReport:
    """Compute Figure 4's age statistics for one vertical's workload.

    For each engine, up to ``max_links_per_answer`` citations per query
    are followed to their page, rendered to HTML, and dated with
    :func:`extract_publication_date`; extraction misses are excluded from
    the age sample but tracked in ``extraction_rate``.
    """
    if max_links_per_answer < 1:
        raise ValueError("max_links_per_answer must be at least 1")
    ages: dict[str, list[int]] = {}
    attempted: dict[str, int] = {}
    extracted: dict[str, int] = {}
    for name, answers in answers_by_system.items():
        ages[name] = []
        attempted[name] = 0
        extracted[name] = 0
        for answer in answers:
            for citation in answer.citations[:max_links_per_answer]:
                if citation.page is None:
                    continue
                attempted[name] += 1
                date = extract_publication_date(render_page(citation.page))
                if date is None:
                    continue
                extracted[name] += 1
                ages[name].append(clock.age_days(date))

    median_age = {
        name: (median(values) if values else float("nan"))
        for name, values in ages.items()
    }
    summary = {
        name: summarize(values) for name, values in ages.items() if values
    }
    extraction_rate = {
        name: (extracted[name] / attempted[name] if attempted[name] else 0.0)
        for name in ages
    }
    return FreshnessReport(
        vertical_group=vertical_group,
        median_age_days=median_age,
        age_summary=summary,
        ages=ages,
        extraction_rate=extraction_rate,
    )
