"""Vertical domain-concentration analysis (Section 2.3's first axis).

The paper examines "domain concentration and temporal freshness across
two high-interest verticals": Claude and GPT "concentrated on Earned
media, citing TechRadar, Tom's Guide, RTINGS, CNET, and Wikipedia" while
"Perplexity trades some editorial concentration for greater Brand and
Social diversity".  This module quantifies that:

* the Herfindahl-Hirschman index (HHI) of each engine's citation
  distribution over domains — higher = more concentrated,
* the top-k citation share and the top domains themselves,
* the share of citations on each source type (complementing Figure 3 at
  the vertical level).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.engines.base import Answer
from repro.llm.classify import SourceTypeClassifier
from repro.webgraph.domains import SourceType

__all__ = ["ConcentrationReport", "EngineConcentration", "domain_concentration"]


def _hhi(shares: Sequence[float]) -> float:
    """Herfindahl-Hirschman index of a share vector (sums to <= 1)."""
    return sum(share * share for share in shares)


@dataclass(frozen=True)
class EngineConcentration:
    """One engine's citation-concentration profile over a workload."""

    engine: str
    citation_count: int
    distinct_domains: int
    hhi: float
    top_domains: tuple[tuple[str, float], ...]  # (domain, share), best first
    type_shares: dict[SourceType, float]

    def top_share(self, k: int = 5) -> float:
        """Combined citation share of the top-``k`` domains."""
        return sum(share for __, share in self.top_domains[:k])


@dataclass(frozen=True)
class ConcentrationReport:
    """Concentration profiles per engine for one vertical workload."""

    vertical_group: str
    engines: dict[str, EngineConcentration]

    def ordered_by_concentration(self) -> list[tuple[str, float]]:
        """(engine, HHI) pairs, most concentrated first."""
        return sorted(
            ((name, profile.hhi) for name, profile in self.engines.items()),
            key=lambda kv: -kv[1],
        )


def domain_concentration(
    answers_by_system: Mapping[str, Sequence[Answer]],
    vertical_group: str = "",
    top_k: int = 8,
    classifier: SourceTypeClassifier | None = None,
) -> ConcentrationReport:
    """Compute Section 2.3's concentration profiles.

    Citations are counted per registrable domain (an engine citing two
    TechRadar pages for one query counts twice — concentration is about
    where attention goes, not set membership).
    """
    if top_k < 1:
        raise ValueError("top_k must be at least 1")
    clf = classifier or SourceTypeClassifier()
    engines: dict[str, EngineConcentration] = {}
    for name, answers in answers_by_system.items():
        domain_counts: dict[str, int] = {}
        type_counts: dict[SourceType, int] = {t: 0 for t in SourceType}
        total = 0
        for answer in answers:
            for citation in answer.citations:
                domain_counts[citation.domain] = (
                    domain_counts.get(citation.domain, 0) + 1
                )
                type_counts[clf.classify(citation.domain, citation.page)] += 1
                total += 1
        if total == 0:
            engines[name] = EngineConcentration(
                engine=name,
                citation_count=0,
                distinct_domains=0,
                hhi=0.0,
                top_domains=(),
                type_shares={t: 0.0 for t in SourceType},
            )
            continue
        shares = {domain: count / total for domain, count in domain_counts.items()}
        ranked = sorted(shares.items(), key=lambda kv: (-kv[1], kv[0]))
        engines[name] = EngineConcentration(
            engine=name,
            citation_count=total,
            distinct_domains=len(domain_counts),
            hhi=_hhi(list(shares.values())),
            top_domains=tuple(ranked[:top_k]),
            type_shares={t: type_counts[t] / total for t in SourceType},
        )
    return ConcentrationReport(vertical_group=vertical_group, engines=engines)
