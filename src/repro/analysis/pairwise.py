"""Pairwise-comparison consistency (Table 2).

Section 3.1: "we derive an alternate ranking R' through exhaustive
pairwise judgments ... Each entity's final score equals the number of
pairwise wins.  We then compute Kendall's tau(R, R')."

Win counts routinely tie, so the tau is the tie-corrected tau-b between
the holistic ranking's positions and the pairwise win counts.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from itertools import combinations

from repro.llm.context import ContextWindow
from repro.llm.model import GroundingMode, SimulatedLLM
from repro.stats.kendall import kendall_tau

__all__ = ["PairwiseConsistency", "pairwise_consistency", "pairwise_win_counts"]


def pairwise_win_counts(
    llm: SimulatedLLM,
    query: str,
    candidates: Sequence[str],
    context: ContextWindow,
    mode: GroundingMode = GroundingMode.NORMAL,
) -> dict[str, int]:
    """Exhaustive pairwise tournament: entity -> number of wins."""
    if len(candidates) < 2:
        raise ValueError("pairwise comparison requires at least two candidates")
    wins = {entity: 0 for entity in candidates}
    for a, b in combinations(candidates, 2):
        winner = llm.pairwise_judge(query, a, b, context, mode=mode)
        wins[winner] += 1
    return wins


@dataclass(frozen=True)
class PairwiseConsistency:
    """One query's holistic-vs-pairwise agreement."""

    query: str
    mode: GroundingMode
    holistic_ranking: tuple[str, ...]
    win_counts: dict[str, int]
    tau: float


def pairwise_consistency(
    llm: SimulatedLLM,
    query: str,
    candidates: Sequence[str],
    context: ContextWindow,
    mode: GroundingMode = GroundingMode.NORMAL,
) -> PairwiseConsistency:
    """Compute tau(R, R') for one query under one grounding regime."""
    holistic = llm.rank_entities(query, list(candidates), context, mode=mode)
    wins = pairwise_win_counts(llm, query, candidates, context, mode=mode)
    # Higher = better on both sides: negate holistic positions, use win
    # counts directly.  tau-b handles the ties in win counts.
    xs = [-float(holistic.ranking.index(entity)) for entity in candidates]
    ys = [float(wins[entity]) for entity in candidates]
    return PairwiseConsistency(
        query=query,
        mode=mode,
        holistic_ranking=holistic.ranking,
        win_counts=wins,
        tau=kendall_tau(xs, ys),
    )
