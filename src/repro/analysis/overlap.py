"""Domain-overlap analysis (Figures 1 and 2).

For each query, every system's citations are normalized to registrable
domains; each AI system's set is compared to the baseline's (Google's
top-10 domains) with Jaccard overlap, and the per-query values are
averaged.  The report also carries the secondary statistics Section 2.1
discusses: cross-model overlap (agreement among the AI engines
themselves) and the unique-domain ratio (ecosystem fragmentation).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.engines.base import Answer
from repro.entities.queries import Query
from repro.stats.jaccard import jaccard, mean_pairwise_jaccard, unique_ratio

__all__ = [
    "OverlapReport",
    "domain_overlap",
    "domain_overlap_by_vertical",
    "system_pair_overlap",
]


@dataclass(frozen=True)
class OverlapReport:
    """Overlap statistics for one workload."""

    baseline: str
    systems: tuple[str, ...]
    mean_overlap: dict[str, float]
    per_query_overlap: dict[str, list[float]]
    cross_model_overlap: float
    unique_domain_ratio: float
    query_count: int

    def ordered_by_overlap(self) -> list[tuple[str, float]]:
        """(system, mean overlap) pairs, lowest overlap first."""
        return sorted(self.mean_overlap.items(), key=lambda kv: kv[1])


def domain_overlap(
    answers_by_system: Mapping[str, Sequence[Answer]],
    baseline: str = "Google",
) -> OverlapReport:
    """Compute the Figure 1/2 overlap statistics.

    ``answers_by_system`` maps system name to its answers, aligned by
    query position across systems (answer *i* of every system responds to
    the same query).  The baseline system is excluded from the per-system
    overlap map but participates in nothing else.
    """
    if baseline not in answers_by_system:
        raise ValueError(f"baseline {baseline!r} missing from answers")
    lengths = {name: len(answers) for name, answers in answers_by_system.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"misaligned workloads: {lengths}")
    query_count = lengths[baseline]
    if query_count == 0:
        raise ValueError("empty workload")

    ai_systems = tuple(n for n in answers_by_system if n != baseline)
    baseline_domains = [a.cited_domains() for a in answers_by_system[baseline]]

    per_query: dict[str, list[float]] = {name: [] for name in ai_systems}
    for name in ai_systems:
        for answer, base in zip(answers_by_system[name], baseline_domains):
            per_query[name].append(jaccard(answer.cited_domains(), base))

    mean_overlap = {
        name: sum(values) / len(values) for name, values in per_query.items()
    }

    # Cross-model overlap and unique-domain ratio are computed per query
    # over the AI systems' domain sets, then averaged.
    cross_values = []
    unique_values = []
    for index in range(query_count):
        sets = [answers_by_system[name][index].cited_domains() for name in ai_systems]
        cross_values.append(mean_pairwise_jaccard(sets))
        unique_values.append(unique_ratio(sets))

    return OverlapReport(
        baseline=baseline,
        systems=ai_systems,
        mean_overlap=mean_overlap,
        per_query_overlap=per_query,
        cross_model_overlap=sum(cross_values) / query_count,
        unique_domain_ratio=sum(unique_values) / query_count,
        query_count=query_count,
    )


def domain_overlap_by_vertical(
    answers_by_system: Mapping[str, Sequence[Answer]],
    queries: Sequence[Query],
    baseline: str = "Google",
) -> dict[str, OverlapReport]:
    """Figure 1 broken down per vertical.

    The paper reports one aggregate over ten consumer topics; per-topic
    reports reveal whether the divergence is uniform or driven by a few
    verticals.  ``queries`` must align positionally with every system's
    answers.
    """
    for name, answers in answers_by_system.items():
        if len(answers) != len(queries):
            raise ValueError(
                f"system {name!r} has {len(answers)} answers for "
                f"{len(queries)} queries"
            )
    by_vertical: dict[str, list[int]] = {}
    for index, query in enumerate(queries):
        by_vertical.setdefault(query.vertical, []).append(index)
    reports = {}
    for vertical, indexes in by_vertical.items():
        subset = {
            name: [answers[i] for i in indexes]
            for name, answers in answers_by_system.items()
        }
        reports[vertical] = domain_overlap(subset, baseline=baseline)
    return reports


def system_pair_overlap(
    answers_by_system: Mapping[str, Sequence[Answer]],
) -> dict[tuple[str, str], float]:
    """Full cross-system overlap matrix (Figure 1's "cross-system" view).

    Returns mean per-query Jaccard for every unordered system pair, keyed
    by the pair in the mapping's iteration order.  Workloads must align
    positionally, as in :func:`domain_overlap`.
    """
    systems = list(answers_by_system)
    lengths = {len(answers) for answers in answers_by_system.values()}
    if len(lengths) != 1:
        raise ValueError("misaligned workloads across systems")
    (query_count,) = lengths
    if query_count == 0:
        raise ValueError("empty workload")

    domain_sets = {
        name: [answer.cited_domains() for answer in answers]
        for name, answers in answers_by_system.items()
    }
    matrix: dict[tuple[str, str], float] = {}
    for i, first in enumerate(systems):
        for second in systems[i + 1:]:
            total = sum(
                jaccard(a, b)
                for a, b in zip(domain_sets[first], domain_sets[second])
            )
            matrix[(first, second)] = total / query_count
    return matrix
