"""Source-typology analysis (Figure 3).

Citations are classified brand / earned / social with the classifier
standing in for GPT-4o, then aggregated into composition shares per
system, both overall and per query intent.  Answers with no citations
(Claude declining to search) contribute nothing — exactly how the paper's
share denominators behave.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.engines.base import Answer
from repro.entities.intents import Intent
from repro.entities.queries import Query
from repro.llm.classify import SourceTypeClassifier
from repro.webgraph.domains import SourceType

__all__ = ["TypologyReport", "typology_by_intent"]

Shares = dict[SourceType, float]


def _shares(counts: dict[SourceType, int]) -> Shares:
    total = sum(counts.values())
    if total == 0:
        return {t: 0.0 for t in SourceType}
    return {t: counts.get(t, 0) / total for t in SourceType}


@dataclass(frozen=True)
class TypologyReport:
    """Source-type composition per system, overall and per intent."""

    systems: tuple[str, ...]
    overall: dict[str, Shares]
    by_intent: dict[Intent, dict[str, Shares]]
    citation_counts: dict[str, int]
    empty_answers: dict[str, int]

    def share(self, system: str, source_type: SourceType) -> float:
        """Overall composition share for one system and type."""
        return self.overall[system][source_type]

    def intent_share(
        self, intent: Intent, system: str, source_type: SourceType
    ) -> float:
        """Per-intent composition share."""
        return self.by_intent[intent][system][source_type]


def typology_by_intent(
    answers_by_system: Mapping[str, Sequence[Answer]],
    queries: Sequence[Query],
    classifier: SourceTypeClassifier | None = None,
) -> TypologyReport:
    """Compute Figure 3's composition shares.

    ``queries`` must align positionally with every system's answers and
    carry the intent labels (Figure 3's workload is intent-typed).
    """
    clf = classifier or SourceTypeClassifier()
    for name, answers in answers_by_system.items():
        if len(answers) != len(queries):
            raise ValueError(
                f"system {name!r} has {len(answers)} answers for "
                f"{len(queries)} queries"
            )

    systems = tuple(answers_by_system)
    overall_counts: dict[str, dict[SourceType, int]] = {
        name: {t: 0 for t in SourceType} for name in systems
    }
    intent_counts: dict[Intent, dict[str, dict[SourceType, int]]] = {
        intent: {name: {t: 0 for t in SourceType} for name in systems}
        for intent in Intent
    }
    citation_counts = {name: 0 for name in systems}
    empty_answers = {name: 0 for name in systems}

    for name in systems:
        for answer, query in zip(answers_by_system[name], queries):
            if not answer.citations:
                empty_answers[name] += 1
                continue
            intent = query.intent if query.intent is not None else Intent.CONSIDERATION
            for citation in answer.citations:
                source_type = clf.classify(citation.domain, citation.page)
                overall_counts[name][source_type] += 1
                intent_counts[intent][name][source_type] += 1
                citation_counts[name] += 1

    return TypologyReport(
        systems=systems,
        overall={name: _shares(overall_counts[name]) for name in systems},
        by_intent={
            intent: {name: _shares(intent_counts[intent][name]) for name in systems}
            for intent in Intent
        },
        citation_counts=citation_counts,
        empty_answers=empty_answers,
    )
