"""Shared ranking metrics.

The perturbation experiments quantify ranking movement with the mean
absolute rank deviation of Section 3.1:

``Delta_i = (1/|R|) * sum_x |rank_{R_i}(x) - rank_R(x)|``
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

__all__ = ["mean_absolute_rank_deviation", "rank_positions"]


def rank_positions(ranking: Sequence[Hashable]) -> dict[Hashable, int]:
    """Item -> 1-based rank; raises on duplicates."""
    positions: dict[Hashable, int] = {}
    for index, item in enumerate(ranking):
        if item in positions:
            raise ValueError(f"duplicate item {item!r} in ranking")
        positions[item] = index + 1
    return positions


def mean_absolute_rank_deviation(
    reference: Sequence[Hashable], perturbed: Sequence[Hashable]
) -> float:
    """The paper's ``Delta_i`` between two rankings of the same items.

    Both rankings must cover the same item set exactly once each.
    """
    ref_pos = rank_positions(reference)
    per_pos = rank_positions(perturbed)
    if set(ref_pos) != set(per_pos):
        raise ValueError("rankings must cover identical item sets")
    if not ref_pos:
        raise ValueError("rankings must be non-empty")
    total = sum(abs(per_pos[item] - ref_pos[item]) for item in ref_pos)
    return total / len(ref_pos)
