"""Evidence perturbations and sensitivity measurement (Table 1).

Three manipulations from Section 3.1:

* **Snippet Shuffle (SS)** — randomize snippet order (presentation bias).
* **Strict Grounding** — not a context edit but a prompting regime; the
  sensitivity harness takes a :class:`GroundingMode`.
* **Entity-Swap Injection (ESI)** — swap entity mentions between
  snippets (contextual dependence): two entities exchange identities
  inside the evidence, text and stances alike.

:func:`sensitivity` runs a perturbation N times against a baseline
ranking and reports the mean absolute rank deviation.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.rank_metrics import mean_absolute_rank_deviation
from repro.entities.catalog import EntityCatalog
from repro.llm.context import ContextWindow
from repro.llm.model import GroundingMode, SimulatedLLM
from repro.llm.rng import derive_rng

__all__ = [
    "PerturbationKind",
    "SensitivityResult",
    "entity_swap_injection",
    "sensitivity",
    "snippet_shuffle",
]


class PerturbationKind(enum.Enum):
    """The perturbations of Section 3.1."""

    SNIPPET_SHUFFLE = "snippet_shuffle"
    ENTITY_SWAP = "entity_swap"


def snippet_shuffle(context: ContextWindow, rng: random.Random) -> ContextWindow:
    """A uniformly random reordering of the context."""
    order = list(range(len(context)))
    rng.shuffle(order)
    return context.reordered(order)


def _swap_text(text: str, forms_a: Sequence[str], forms_b: Sequence[str]) -> str:
    """Swap every surface form of entity A with entity B's primary form.

    A placeholder pass keeps the swap symmetric (A->B and B->A without
    the second substitution re-capturing the first).
    """
    placeholder = "\x00ENTITY\x00"
    result = text
    for form in sorted(forms_a, key=len, reverse=True):
        result = result.replace(form, placeholder)
    for form in sorted(forms_b, key=len, reverse=True):
        result = result.replace(form, forms_a[0])
    return result.replace(placeholder, forms_b[0])


def entity_swap_injection(
    context: ContextWindow,
    catalog: EntityCatalog,
    candidates: Sequence[str],
    rng: random.Random,
    swap_fraction: float = 0.5,
) -> ContextWindow:
    """Swap entity identities inside the evidence.

    A random pairing over (a fraction of) the candidate entities is
    drawn; for each pair, every snippet's stances and text exchange the
    two identities.  The context *shape* (order, URLs, lengths) is
    untouched — only who-is-said-to-be-good changes, which is exactly the
    contextual-dependence probe.
    """
    if not 0.0 < swap_fraction <= 1.0:
        raise ValueError("swap_fraction must be in (0, 1]")
    pool = [c for c in candidates if c in catalog]
    rng.shuffle(pool)
    keep = max(2, int(len(pool) * swap_fraction))
    pool = pool[:keep]
    pairs = [
        (pool[i], pool[i + 1]) for i in range(0, len(pool) - 1, 2)
    ]
    if not pairs:
        return context

    mapping: dict[str, str] = {}
    for a, b in pairs:
        mapping[a] = b
        mapping[b] = a

    swapped = []
    for snippet in context:
        stances = {
            mapping.get(entity, entity): stance
            for entity, stance in snippet.entity_stance.items()
        }
        text = snippet.text
        for a, b in pairs:
            text = _swap_text(
                text,
                list(catalog.get(a).surface_forms()),
                list(catalog.get(b).surface_forms()),
            )
        swapped.append(snippet.with_stances(stances).__class__(
            text=text,
            url=snippet.url,
            domain=snippet.domain,
            entity_stance=stances,
        ))
    return ContextWindow(swapped)


@dataclass(frozen=True)
class SensitivityResult:
    """Mean absolute rank deviation for one (perturbation, mode) cell."""

    kind: PerturbationKind
    mode: GroundingMode
    runs: int
    deltas: tuple[float, ...]

    @property
    def delta_avg(self) -> float:
        """The paper's ``Delta_avg``: mean deviation over runs."""
        return sum(self.deltas) / len(self.deltas)


def sensitivity(
    llm: SimulatedLLM,
    query: str,
    candidates: Sequence[str],
    context: ContextWindow,
    kind: PerturbationKind,
    *,
    mode: GroundingMode = GroundingMode.NORMAL,
    runs: int = 10,
    seed: int = 0,
    catalog: EntityCatalog | None = None,
) -> SensitivityResult:
    """Run one Table 1 cell for one query.

    The baseline ranking ``R`` uses the unperturbed context under the
    same grounding mode; each run applies a fresh random perturbation and
    measures the deviation of the new ranking ``R_i`` from ``R``.
    """
    if runs < 1:
        raise ValueError("runs must be positive")
    if kind is PerturbationKind.ENTITY_SWAP and catalog is None:
        raise ValueError("entity swap requires the entity catalog")

    baseline = llm.rank_entities(query, list(candidates), context, mode=mode)
    deltas = []
    for run in range(runs):
        rng = derive_rng("perturbation", seed, query, run)
        if kind is PerturbationKind.SNIPPET_SHUFFLE:
            perturbed_context = snippet_shuffle(context, rng)
        else:
            perturbed_context = entity_swap_injection(
                context, catalog, candidates, rng
            )
        perturbed = llm.rank_entities(
            query, list(candidates), perturbed_context, mode=mode
        )
        deltas.append(
            mean_absolute_rank_deviation(baseline.ranking, perturbed.ranking)
        )
    return SensitivityResult(kind=kind, mode=mode, runs=runs, deltas=tuple(deltas))
