"""Citation-miss analysis (Table 3).

Section 3.2.2's log analysis: when the model ranks entities, some ranked
entities have no supporting snippet in the retrieved evidence — they were
injected from the pre-training prior.  The per-entity *miss rate* is

``miss_rate(e) = #(e ranked without snippet support) / #(e ranked)``

and the paper's Table 3 shows it climbing from mainstream makes (Toyota
0.06) to peripheral ones (Infiniti 0.73).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.llm.model import RankedAnswer

__all__ = ["CitationMissReport", "citation_miss_rates"]


@dataclass(frozen=True)
class CitationMissReport:
    """Aggregated citation-miss statistics over a workload."""

    ranked_counts: dict[str, int]
    miss_counts: dict[str, int]
    miss_rate: dict[str, float]
    overall_miss_rate: float

    def rate_for(self, entity_id: str) -> float:
        """Miss rate for one entity (``KeyError`` if never ranked)."""
        return self.miss_rate[entity_id]


def citation_miss_rates(answers: Sequence[RankedAnswer]) -> CitationMissReport:
    """Aggregate miss rates from a sequence of ranked answers."""
    if not answers:
        raise ValueError("at least one answer is required")
    ranked: dict[str, int] = {}
    missed: dict[str, int] = {}
    total_ranked = 0
    total_missed = 0
    for answer in answers:
        uncited = set(answer.uncited_entities())
        for entity in answer.ranking:
            ranked[entity] = ranked.get(entity, 0) + 1
            total_ranked += 1
            if entity in uncited:
                missed[entity] = missed.get(entity, 0) + 1
                total_missed += 1
    miss_rate = {
        entity: missed.get(entity, 0) / count for entity, count in ranked.items()
    }
    return CitationMissReport(
        ranked_counts=ranked,
        miss_counts={e: missed.get(e, 0) for e in ranked},
        miss_rate=miss_rate,
        overall_miss_rate=(total_missed / total_ranked if total_ranked else 0.0),
    )
