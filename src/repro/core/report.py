"""Rendering experiment results as the paper's rows and series.

Each ``render_*`` function takes a result object from
:class:`repro.core.study.ComparativeStudy` and returns the text table or
series the corresponding paper artifact shows, so a benchmark run prints
directly comparable output.
"""

from __future__ import annotations

from repro.analysis.freshness import FreshnessReport
from repro.analysis.overlap import OverlapReport
from repro.analysis.typology import TypologyReport
from repro.core.study import (
    ComparativeStudy,
    Fig2Result,
    Fig4Result,
    Table1Result,
    Table2Result,
    Table3Result,
)
from repro.engines.registry import AI_ENGINE_NAMES
from repro.stats.mannwhitney import mann_whitney_u
from repro.entities.intents import Intent
from repro.webgraph.domains import SourceType

__all__ = [
    "render_fig1",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_resilience_annotations",
    "render_serve_stats",
    "render_stats",
    "render_table1",
    "render_table2",
    "render_table3",
]


def _pct(value: float) -> str:
    return f"{100.0 * value:5.1f}%"


def render_fig1(report: OverlapReport) -> str:
    """Figure 1: AI-vs-Google domain overlap over ranking queries."""
    lines = [
        "Figure 1 — AI-vs-Google Domain Overlap over Ranking Queries",
        f"  ({report.query_count} queries; baseline: {report.baseline} top-10)",
    ]
    for system in AI_ENGINE_NAMES:
        if system in report.mean_overlap:
            lines.append(f"  {system:<11} {_pct(report.mean_overlap[system])}")
    lines.append(f"  cross-model overlap: {_pct(report.cross_model_overlap)}")
    lines.append(f"  unique-domain ratio: {_pct(report.unique_domain_ratio)}")
    return "\n".join(lines)


def render_fig2(result: Fig2Result) -> str:
    """Figure 2: overlap on popular and niche entity-comparison queries."""
    lines = [
        "Figure 2 — AI-vs-Google & Gemini Domain Overlap on Popular and Niche Entities",
        f"  {'system':<11} {'vs Google pop':>13} {'vs Google nic':>13} "
        f"{'vs Gemini pop':>13} {'vs Gemini nic':>13}",
    ]
    for system in AI_ENGINE_NAMES:
        cells = []
        for report in (
            result.vs_google_popular,
            result.vs_google_niche,
            result.vs_gemini_popular,
            result.vs_gemini_niche,
        ):
            cells.append(
                _pct(report.mean_overlap[system])
                if system in report.mean_overlap
                else "    —"
            )
        lines.append(f"  {system:<11} " + " ".join(f"{c:>13}" for c in cells))
    lines.append(
        "  unique-domain ratio: popular "
        + _pct(result.vs_google_popular.unique_domain_ratio)
        + " -> niche "
        + _pct(result.vs_google_niche.unique_domain_ratio)
    )
    lines.append(
        "  cross-model overlap: popular "
        + _pct(result.vs_google_popular.cross_model_overlap)
        + " -> niche "
        + _pct(result.vs_google_niche.cross_model_overlap)
    )
    return "\n".join(lines)


def render_fig3(report: TypologyReport) -> str:
    """Figure 3: source category distribution by intent and model."""
    order = [t for t in (SourceType.EARNED, SourceType.SOCIAL, SourceType.BRAND)]
    lines = [
        "Figure 3 — Source category distribution by intent and model",
        f"  {'system':<11} " + " ".join(f"{t.value:>7}" for t in order) + "   (aggregate)",
    ]
    for system in report.systems:
        shares = report.overall[system]
        lines.append(
            f"  {system:<11} " + " ".join(_pct(shares[t]) for t in order)
        )
    for intent in Intent:
        lines.append(f"  -- {intent.value} --")
        for system in report.systems:
            shares = report.by_intent[intent][system]
            lines.append(
                f"  {system:<11} " + " ".join(_pct(shares[t]) for t in order)
            )
    return "\n".join(lines)


def _render_freshness(report: FreshnessReport, label: str) -> list[str]:
    lines = [f"  -- {label} --"]
    for engine, age in sorted(report.median_age_days.items(), key=lambda kv: kv[1]):
        summary = report.age_summary.get(engine)
        spread = (
            f"  (p25 {summary.p25:6.0f}  p75 {summary.p75:6.0f}  n={summary.count})"
            if summary
            else ""
        )
        significance = ""
        google_ages = report.ages.get("Google", [])
        engine_ages = report.ages.get(engine, [])
        if engine != "Google" and len(google_ages) >= 8 and len(engine_ages) >= 8:
            try:
                test = mann_whitney_u(engine_ages, google_ages)
            except ValueError:
                pass
            else:
                marker = "*" if test.significant() else " "
                significance = f"  vs Google p={test.p_value:.3g}{marker}"
        lines.append(f"  {engine:<11} median {age:6.0f} days{spread}{significance}")
    return lines


def render_fig4(result: Fig4Result) -> str:
    """Figure 4 / Section 2.3: article ages and domain concentration."""
    lines = ["Figure 4 — Article age in days by engine and vertical"]
    lines.extend(_render_freshness(result.electronics, "Consumer Electronics"))
    lines.extend(_render_freshness(result.automotive, "Automotive"))
    lines.append("Section 2.3 — Domain concentration (HHI; top cited domains)")
    for report in (result.electronics_concentration, result.automotive_concentration):
        lines.append(f"  -- {report.vertical_group} --")
        for engine, hhi in report.ordered_by_concentration():
            profile = report.engines[engine]
            leaders = ", ".join(d for d, __ in profile.top_domains[:4])
            lines.append(
                f"  {engine:<11} HHI {hhi:.3f}  "
                f"({profile.distinct_domains} domains)  top: {leaders}"
            )
    return "\n".join(lines)


def render_table1(result: Table1Result) -> str:
    """Table 1: SS and ESI perturbation sensitivity."""
    lines = [
        "Table 1 — Snippet Shuffle (SS) and ESI perturbations",
        f"  {'Setting':<18} {'SS (Normal)':>12} {'SS (Strict)':>12} {'ESI':>8}",
    ]
    for setting in ("popular", "niche"):
        lines.append(
            f"  {setting.title() + ' Entities':<18} "
            f"{result.ss_normal[setting]:>12.2f} "
            f"{result.ss_strict[setting]:>12.2f} "
            f"{result.esi[setting]:>8.2f}"
        )
    return "\n".join(lines)


def render_table2(result: Table2Result) -> str:
    """Table 2: Kendall tau between holistic and pairwise rankings."""
    lines = [
        "Table 2 — Kendall tau between one-shot R and pairwise-derived R'",
        f"  {'Setting':<18} {'tau (Normal)':>13} {'tau (Strict)':>13}",
    ]
    for setting in ("popular", "niche"):
        lines.append(
            f"  {setting.title() + ' Entities':<18} "
            f"{result.tau_normal[setting]:>13.3f} "
            f"{result.tau_strict[setting]:>13.3f}"
        )
    return "\n".join(lines)


def render_stats(study: "ComparativeStudy") -> str:
    """Execution statistics for one study: phases, pools, caches.

    Rendered by ``python -m repro run --stats``; covers the runner's
    per-phase wall time and query counts, each engine's memo-cache
    hits/misses (as observed in this process — forked pool workers keep
    their own short-lived copies), and the world's evidence cache.
    """
    stats = study.runner.stats
    effective = ""
    if stats.effective_executor and stats.effective_executor != stats.executor:
        # The pool degraded (e.g. no fork support -> threads); make the
        # substitution visible next to what was requested.
        effective = f" (effective: {stats.effective_executor})"
    lines = [
        "Run statistics",
        f"  runner: workers={stats.workers} executor={stats.executor}{effective}",
        f"  {'phase':<12} {'wall s':>8} {'queries':>9} {'pool tasks':>11}",
    ]
    for phase in stats.phases.values():
        lines.append(
            f"  {phase.label:<12} {phase.seconds:>8.2f} "
            f"{phase.queries:>9} {phase.pool_tasks:>11}"
        )
    lines.append(
        f"  {'total':<12} {stats.total_seconds:>8.2f} {stats.total_queries:>9}"
    )
    lines.append("  engine memo caches (this process):")
    for name, engine in study.world.engines.items():
        hits, misses = engine.cache_stats()
        lines.append(f"    {name:<11} hits {hits:>6}  misses {misses:>6}")
    evidence = study.world.evidence_cache
    cache_stats = evidence.stats
    lines.append(
        f"  evidence cache: {len(evidence)} contexts, "
        f"{cache_stats.hits} hits / {cache_stats.misses} misses "
        f"(hit rate {100.0 * cache_stats.hit_rate:.0f}%)"
    )
    search_engine = study.world.search_engine
    query_stats = search_engine.query_cache_stats()
    lines.append(
        f"  query cache: {query_stats.size} entries, "
        f"{query_stats.hits} hits / {query_stats.misses} misses "
        f"(hit rate {100.0 * query_stats.hit_rate:.0f}%)"
    )
    snippet_stats = search_engine.snippet_cache.counters()
    lines.append(
        f"  snippet cache: {snippet_stats.size} pages, "
        f"{snippet_stats.hits} hits / {snippet_stats.misses} misses "
        f"(hit rate {100.0 * snippet_stats.hit_rate:.0f}%)"
    )
    ctx = study.world.resilience
    if ctx is not None:
        lines.append(
            f"  resilience: plan seed={ctx.config.plan.seed} "
            f"specs={len(ctx.config.plan.specs)} "
            f"sim clock={ctx.clock.now():.2f}s"
        )
        events = stats.resilience_events or ctx.events.snapshot()
        for name in sorted(events):
            lines.append(f"    {name:<22} {events[name]:>6}")
        if not events:
            lines.append("    (no resilience events)")
        quarantined = ctx.quarantine.count("quarantined")
        degraded = ctx.quarantine.count("degraded")
        if quarantined or degraded:
            lines.append(
                f"    quarantine registry: {quarantined} quarantined, "
                f"{degraded} degraded"
            )
        coverage = ctx.coverage.records()
        if coverage:
            lost = sum(len(record.missing) for record in coverage)
            lines.append(
                f"    shard coverage: {len(coverage)} partial scatter(s), "
                f"{lost} shard loss(es)"
            )
    if stats.journal_replays:
        lines.append(f"  journal: {stats.journal_replays} chunks replayed")
    return "\n".join(lines)


def render_serve_stats(snapshot) -> str:
    """One serve run's accounting, paper-report style.

    Takes a :class:`~repro.serve.stats.ServeSnapshot` (or anything
    shaped like one).  The hit/coalesce/miss split is the serving
    tier's headline: misses are the only requests that computed, hits
    were already memoized, and coalesced requests piggybacked on an
    in-flight duplicate — together they are the work the tier absorbed.
    """
    outcomes = snapshot.outcomes
    lines = [
        "Serving statistics",
        f"  requests: {snapshot.requests} over {snapshot.sim_seconds:.1f} "
        f"simulated s ({snapshot.wall_seconds:.2f} wall s, "
        f"{snapshot.throughput_rps:.0f} req/s)",
        f"  outcomes: hit {outcomes['hit']}  coalesced "
        f"{outcomes['coalesced']}  miss {outcomes['miss']}  shed "
        f"{outcomes['shed']}  degraded {outcomes['degraded']}  partial "
        f"{outcomes.get('partial', 0)}",
        f"  duplicate absorption: "
        f"{100.0 * snapshot.duplicate_absorption:.1f}% of answered "
        "requests served without a computation",
        f"  admission waits: {snapshot.admission_waits}",
        f"  service latency: p50 {snapshot.service.p50_ms:.2f} ms  "
        f"p90 {snapshot.service.p90_ms:.2f} ms  "
        f"p99 {snapshot.service.p99_ms:.2f} ms  "
        f"max {snapshot.service.max_ms:.2f} ms",
        f"  queue delay: p50 {snapshot.queue_delay.p50_ms:.2f} ms  "
        f"p99 {snapshot.queue_delay.p99_ms:.2f} ms",
    ]
    return "\n".join(lines)


def render_resilience_annotations(resilience, phase: str) -> str:
    """Per-cell provenance footnote for one experiment's lost data.

    Empty string when the phase quarantined nothing — appending the
    annotation must not perturb a clean run's rendered output.  Records
    are sorted (engine, key, site) for deterministic rendering and
    capped, with an explicit remainder count, so a pathological plan
    cannot swamp the table it annotates.
    """
    records = resilience.quarantine.records(phase)
    if not records:
        return ""
    cap = 20
    ordered = sorted(records, key=lambda r: (r.engine, r.key, r.site))
    lines = [
        f"  ! {len(ordered)} cell(s) degraded by failures "
        f"(values above may rest on partial data):"
    ]
    for record in ordered[:cap]:
        lines.append(
            f"    {record.kind}: engine={record.engine} query={record.key} "
            f"site={record.site} attempts={record.attempts} ({record.reason})"
        )
    if len(ordered) > cap:
        lines.append(f"    ... and {len(ordered) - cap} more")
    return "\n".join(lines)


def render_table3(result: Table3Result) -> str:
    """Table 3: representative citation-miss rates (SUV queries)."""
    names = list(result.representative)
    lines = [
        "Table 3 — Representative citation-miss rates (SUV queries)",
        "  Entity    " + " ".join(f"{n:>10}" for n in names),
        "  Miss Rate " + " ".join(f"{result.representative[n]:>10.2f}" for n in names),
        f"  overall miss rate: {result.overall_miss_rate:.2f}",
    ]
    return "\n".join(lines)
