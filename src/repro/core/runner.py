"""Parallel study execution: worker pools, evidence caching, run stats.

The paper's workloads are embarrassingly parallel across (engine, query)
pairs, and the Section 3 experiments re-retrieve the same evidence
context ``D_q`` for the same queries in Tables 1, 2 and 3.  This module
exploits both facts:

* :class:`StudyRunner` fans ``engine.answer_all`` out over a
  ``concurrent.futures`` pool.  ``workers=1`` (the default) is the plain
  sequential loop the study always used, so determinism-sensitive tests
  see no pool at all.  With ``workers > 1`` the workload is chunked per
  engine and reassembled in submission order, which makes parallel
  results **byte-identical** to sequential ones — engines are
  deterministic per query, and ordering is fixed by construction, not by
  completion time.
* :class:`EvidenceCache` is a world-level, keyed memo for the Section
  3.1 evidence contexts, so each ``(query, depth)`` pair is retrieved
  exactly once per world no matter how many experiments revisit it.
  The search substrate adds two more world-level memos under the same
  contract — :class:`~repro.search.engine.SearchEngine`'s query-result
  cache and its :class:`~repro.search.snippets.SnippetCache` — both
  instance-owned and lock-guarded
  (:class:`~repro.search.caching.BoundedCache`): forked pool workers
  inherit warm copies copy-on-write, the thread executor shares one
  safely, and cached values are deterministic, so worker topology never
  changes results.
* :class:`RunStats` counts what happened (queries answered, pool tasks,
  cache hits/misses, wall time per phase) and is rendered by
  :func:`repro.core.report.render_stats` and ``python -m repro run
  --stats``.

Process pools use the ``fork`` start method and ship the world to
workers by inheritance (a module-level global set just before the pool
forks), so nothing as large as a corpus is ever pickled; only query
chunks go in and answer lists come back.  On platforms without ``fork``
the runner degrades to threads.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections.abc import Callable, Hashable, Iterator, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.engines.base import Answer
from repro.entities.queries import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.world import World

__all__ = [
    "CacheStats",
    "EvidenceCache",
    "PhaseStats",
    "RunStats",
    "StudyRunner",
]


# ----------------------------------------------------------------------
# Evidence cache


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class EvidenceCache:
    """World-level memo for retrieved evidence contexts.

    Keys are caller-provided hashables — the study uses
    ``(query_text, policy)``, which captures everything the retrieval
    depends on (the policy carries the evidence depth).  Values are
    whatever ``compute`` returns; entries are held in FIFO insertion
    order and trimmed to ``limit``.

    Invariants:

    * one retrieval per key per world — a second lookup is a hit, never
      a recompute, so ``stats.misses == len(cache)`` until eviction
      begins;
    * thread-safe — ``compute`` runs outside the lock (a racing
      duplicate computation is deterministic, so last-insert-wins is
      harmless), bookkeeping inside it.
    """

    def __init__(self, limit: int = 8192) -> None:
        if limit < 1:
            raise ValueError("limit must be at least 1")
        self._limit = limit
        self._entries: dict[Hashable, Any] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on first use."""
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
        value = compute()
        with self._lock:
            if key not in self._entries:
                self._entries[key] = value
                while len(self._entries) > self._limit:
                    self._entries.pop(next(iter(self._entries)))
                    self.stats.evictions += 1
            return self._entries[key]

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


# ----------------------------------------------------------------------
# Run statistics


@dataclass
class PhaseStats:
    """What one labelled phase of a run did."""

    label: str
    seconds: float = 0.0
    queries: int = 0
    pool_tasks: int = 0


class RunStats:
    """Timing and work counters for one study run.

    Phases are labelled via the :meth:`phase` context manager (the
    experiment registry labels them with the experiment id); pool
    accounting from :class:`StudyRunner` lands on whichever phase is
    active, or an ``(ad hoc)`` bucket outside any phase.
    """

    def __init__(self, workers: int = 1, executor: str = "process") -> None:
        self.workers = workers
        self.executor = executor
        self.phases: dict[str, PhaseStats] = {}
        self._stack: list[str] = []

    def _bucket(self, label: str | None = None) -> PhaseStats:
        name = label or (self._stack[-1] if self._stack else "(ad hoc)")
        if name not in self.phases:
            self.phases[name] = PhaseStats(label=name)
        return self.phases[name]

    @contextmanager
    def phase(self, label: str) -> Iterator[PhaseStats]:
        """Attribute wall time (and nested pool work) to ``label``."""
        bucket = self._bucket(label)
        self._stack.append(label)
        started = time.perf_counter()  # detlint: ignore[DET002] -- RunStats timing, not part of results
        try:
            yield bucket
        finally:
            self._stack.pop()
            bucket.seconds += time.perf_counter() - started  # detlint: ignore[DET002]

    def count_pool_work(self, queries: int, pool_tasks: int) -> None:
        """Record one ``StudyRunner.answers`` call against the active phase."""
        bucket = self._bucket()
        bucket.queries += queries
        bucket.pool_tasks += pool_tasks

    @property
    def total_queries(self) -> int:
        return sum(p.queries for p in self.phases.values())

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases.values())


# ----------------------------------------------------------------------
# Worker-side entry point (process pools)

#: World inherited by forked pool workers.  Set immediately before the
#: pool is created and cleared right after it shuts down; ``fork``
#: snapshots it into each child, so the corpus/index never crosses a
#: pipe.
_WORKER_WORLD: "World | None" = None


def _answer_chunk(engine_name: str, queries: list[Query]) -> list[Answer]:
    """Answer one chunk in a forked worker, via the inherited world."""
    world = _WORKER_WORLD
    if world is None:  # pragma: no cover - defensive; fork guarantees it
        raise RuntimeError("worker has no inherited world")
    return world.engines[engine_name].answer_all(queries)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# The runner


class StudyRunner:
    """Fans engine workloads out over a worker pool.

    ``workers`` and ``executor`` default to the world's
    :class:`~repro.core.config.StudyConfig`; ``workers=1`` takes the
    exact sequential path the study always had.  Executors:

    * ``"process"`` — ``fork``-based :class:`ProcessPoolExecutor`; the
      world is inherited copy-on-write, chunks of queries go out,
      answers come back.  Worker-side engine memo caches are forked
      copies and die with the pool, so the parent's caches are never
      mutated concurrently.  Falls back to threads where ``fork`` is
      unavailable.
    * ``"thread"`` — :class:`ThreadPoolExecutor` sharing the parent's
      engines; :meth:`AnswerEngine.answer` inserts under a lock, so the
      shared memo cache is safe (duplicate computations are
      deterministic and identical).

    Determinism invariant: results are keyed by (engine, chunk index)
    and reassembled in submission order, so for any worker count the
    output is byte-identical to ``workers=1``.
    """

    def __init__(
        self,
        world: "World",
        workers: int | None = None,
        executor: str | None = None,
        stats: RunStats | None = None,
    ) -> None:
        config = world.config
        self._world = world
        self.workers = config.workers if workers is None else workers
        self.executor = config.executor if executor is None else executor
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.executor not in ("process", "thread"):
            raise ValueError(f"unknown executor {self.executor!r}")
        self.stats = stats or RunStats(self.workers, self.executor)

    # ------------------------------------------------------------------

    def answers(self, queries: Sequence[Query]) -> dict[str, list[Answer]]:
        """Every engine's answers to ``queries``, possibly in parallel."""
        queries = list(queries)
        engines = self._world.engines
        if self.workers == 1 or len(queries) < 2:
            self.stats.count_pool_work(len(queries) * len(engines), 0)
            return {
                name: engine.answer_all(queries)
                for name, engine in engines.items()
            }
        return self._answers_pooled(queries)

    def _chunks(self, queries: list[Query]) -> list[list[Query]]:
        size = max(1, -(-len(queries) // self.workers))  # ceil division
        return [queries[i : i + size] for i in range(0, len(queries), size)]

    def _answers_pooled(self, queries: list[Query]) -> dict[str, list[Answer]]:
        global _WORKER_WORLD
        engines = self._world.engines
        chunks = self._chunks(queries)
        use_processes = self.executor == "process" and _fork_available()

        futures: dict[str, list[Future]] = {}
        if use_processes:
            # The one allowlisted shared-global write (see conclint
            # CONC001): publish the world for fork inheritance, retract
            # it in the outermost finally no matter what fails.
            _WORKER_WORLD = self._world
        try:
            # Pool creation sits inside the try: if it fails (fd/process
            # limits), the handshake global must still be retracted, or
            # a stale world would leak into every later fork.
            if use_processes:
                pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
            else:
                pool = ThreadPoolExecutor(max_workers=self.workers)
            try:
                for name in engines:
                    if use_processes:
                        futures[name] = [
                            pool.submit(_answer_chunk, name, chunk)
                            for chunk in chunks
                        ]
                    else:
                        futures[name] = [
                            pool.submit(engines[name].answer_all, chunk)
                            for chunk in chunks
                        ]
                # Reassembly in submission order — not completion order —
                # is what makes the output independent of scheduling.
                results = {
                    name: [answer for future in futs for answer in future.result()]
                    for name, futs in futures.items()
                }
            finally:
                pool.shutdown()
        finally:
            if use_processes:
                _WORKER_WORLD = None
        self.stats.count_pool_work(
            len(queries) * len(engines), len(chunks) * len(engines)
        )
        return results
