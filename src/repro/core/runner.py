"""Parallel study execution: worker pools, evidence caching, run stats.

The paper's workloads are embarrassingly parallel across (engine, query)
pairs, and the Section 3 experiments re-retrieve the same evidence
context ``D_q`` for the same queries in Tables 1, 2 and 3.  This module
exploits both facts:

* :class:`StudyRunner` fans ``engine.answer_all`` out over a
  ``concurrent.futures`` pool.  ``workers=1`` (the default) is the plain
  sequential loop the study always used, so determinism-sensitive tests
  see no pool at all.  With ``workers > 1`` the workload is chunked per
  engine and reassembled in submission order, which makes parallel
  results **byte-identical** to sequential ones — engines are
  deterministic per query, and ordering is fixed by construction, not by
  completion time.
* :class:`EvidenceCache` is a world-level, keyed memo for the Section
  3.1 evidence contexts, so each ``(query, depth)`` pair is retrieved
  exactly once per world no matter how many experiments revisit it.
  The search substrate adds two more world-level memos under the same
  contract — :class:`~repro.search.engine.SearchEngine`'s query-result
  cache and its :class:`~repro.search.snippets.SnippetCache` — both
  instance-owned and lock-guarded
  (:class:`~repro.search.caching.BoundedCache`): forked pool workers
  inherit warm copies copy-on-write, the thread executor shares one
  safely, and cached values are deterministic, so worker topology never
  changes results.
* :class:`RunStats` counts what happened (queries answered, pool tasks,
  cache hits/misses, wall time per phase) and is rendered by
  :func:`repro.core.report.render_stats` and ``python -m repro run
  --stats``.

Process pools use the ``fork`` start method and ship the world to
workers by inheritance (a module-level global set just before the pool
forks), so nothing as large as a corpus is ever pickled; only query
chunks go in and answer lists come back.  On platforms without ``fork``
the runner degrades to threads — with a :class:`RuntimeWarning` and the
effective executor recorded in :class:`RunStats`, so degraded runs are
visible.

Resilience (see :mod:`repro.resilience`): when the world carries an
installed :class:`~repro.resilience.context.ResilienceContext`, the
runner becomes a containment boundary.  A failing worker chunk is
retried with deterministic backoff and, if it keeps failing, re-run
query-by-query in the parent so the surviving queries complete and only
the truly broken ones are quarantined as degraded answers — the pool is
never killed.  A :class:`~repro.resilience.journal.RunJournal` records
each completed (engine, query-chunk) result so ``python -m repro run
--resume`` replays finished chunks and recomputes only the missing
ones.  Without a context, failures propagate exactly as before — as a
:class:`ChunkExecutionError` naming the engine and query ids.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from collections.abc import Callable, Hashable, Iterator, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cachewitness import witness_for
from repro.engines.base import Answer
from repro.entities.queries import Query
from repro.llm.rng import derive_seed
from repro.lockorder import witness_lock
from repro.resilience.context import ResilienceContext, ResilienceEvents
from repro.resilience.coverage import ShardCoverage
from repro.resilience.faults import ResilienceExhausted
from repro.resilience.journal import RunJournal, journal_key
from repro.resilience.quarantine import QuarantineRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.world import World

__all__ = [
    "CacheStats",
    "ChunkExecutionError",
    "EvidenceCache",
    "PhaseStats",
    "RunStats",
    "StudyRunner",
]


# ----------------------------------------------------------------------
# Evidence cache


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class EvidenceCache:
    """World-level memo for retrieved evidence contexts.

    Keys are caller-provided hashables — the study uses
    ``(query_text, policy)``, which captures everything the retrieval
    depends on (the policy carries the evidence depth).  Values are
    whatever ``compute`` returns; entries are held in FIFO insertion
    order and trimmed to ``limit``.

    Invariants:

    * one retrieval per key per world — a second lookup is a hit, never
      a recompute, so ``stats.misses == len(cache)`` until eviction
      begins.  Hit-vs-miss is decided by key *presence* under the lock,
      never by comparing the value against ``None``, so a compute that
      legitimately returns ``None`` memoizes once like any other value;
    * thread-safe — ``compute`` runs outside the lock (a racing
      duplicate computation is deterministic, so last-insert-wins is
      harmless), bookkeeping inside it;
    * exception-safe — a ``compute`` that raises changes nothing: no
      counter moves, no entry (partial or otherwise) is stored, and the
      next lookup of the same key computes afresh.  Counters therefore
      only ever describe *completed* work: the miss is counted by the
      insert (or, for the loser of a racing duplicate computation, as a
      hit on the winner's entry).

    With a :class:`~repro.resilience.context.ResilienceContext` attached
    (``cache.resilience``, wired by ``World.install_resilience``), the
    compute runs behind the ``"evidence.context"`` fault site: injected
    retrieval failures are retried with deterministic backoff, and an
    exhausted compute raises
    :class:`~repro.resilience.faults.ResilienceExhausted` for the study
    layer to quarantine.
    """

    def __init__(self, limit: int = 8192) -> None:
        if limit < 1:
            raise ValueError("limit must be at least 1")
        self._limit = limit
        self._entries: dict[Hashable, Any] = {}
        self._lock = witness_lock("EvidenceCache._lock")
        #: Staleness witness (None unless REPRO_CACHE_WITNESS=1).  No
        #: epoch supplier: the cache never sees the index — the *keys*
        #: carry the index epoch (the study appends it), which the
        #: witness's same-key/different-value check enforces.
        self._witness = witness_for("EvidenceCache._entries")
        self.stats = CacheStats()
        #: Optional ResilienceContext guarding the compute path.
        self.resilience: ResilienceContext | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on first use."""
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                cached = self._entries[key]
                hit = True
            else:
                hit = False
        if hit:
            # Witness checks run outside the lock (leaf-level witness
            # lock; see CANONICAL_HIERARCHY).
            if self._witness is not None:
                self._witness.verify(key, cached)
            return cached
        ctx = self.resilience
        if ctx is not None:
            mark = ctx.coverage.mark()
            value = ctx.call("evidence.context", key, compute)
            if ctx.coverage.recorded_since(mark):
                # The compute degraded shard coverage (this thread lost
                # shards mid-retrieval): hand the partial context back
                # uncached so the next request re-retrieves at whatever
                # coverage the recovered shards provide.  No counters —
                # the skip must leave hit/miss bookkeeping exactly as a
                # clean run's, and the coverage log already tells the
                # story.
                return value
        else:
            value = compute()
        with self._lock:
            if key not in self._entries:
                inserted = True
                self.stats.misses += 1
                self._entries[key] = value
                while len(self._entries) > self._limit:
                    self._entries.pop(next(iter(self._entries)))
                    self.stats.evictions += 1
            else:
                # Lost a racing duplicate computation: the winner's
                # insert was the one miss; this caller observed a hit.
                inserted = False
                self.stats.hits += 1
            stored = self._entries[key]
        if self._witness is not None:
            if inserted:
                self._witness.record(key, stored)
            else:
                self._witness.verify(key, stored)
        return stored

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()
        if self._witness is not None:
            self._witness.clear()


# ----------------------------------------------------------------------
# Run statistics


@dataclass
class PhaseStats:
    """What one labelled phase of a run did."""

    label: str
    seconds: float = 0.0
    queries: int = 0
    pool_tasks: int = 0


class RunStats:
    """Timing and work counters for one study run.

    Phases are labelled via the :meth:`phase` context manager (the
    experiment registry labels them with the experiment id); pool
    accounting from :class:`StudyRunner` lands on whichever phase is
    active, or an ``(ad hoc)`` bucket outside any phase.

    Beyond phase timing the stats carry the run's resilience telemetry:
    ``effective_executor`` (what the pool actually ran on, e.g. after a
    no-``fork`` degrade), ``journal_replays`` (chunks served from the
    resume journal), and ``resilience_events`` (a snapshot of the
    context's retry/fault/breaker/quarantine counters, refreshed after
    every ``StudyRunner.answers`` call).
    """

    def __init__(self, workers: int = 1, executor: str = "process") -> None:
        self.workers = workers
        self.executor = executor
        self.phases: dict[str, PhaseStats] = {}
        self._stack: list[str] = []
        self.effective_executor: str | None = None
        self.journal_replays = 0
        self.resilience_events: dict[str, int] = {}

    @property
    def current_phase(self) -> str:
        """The innermost active phase label (``(ad hoc)`` outside any)."""
        return self._stack[-1] if self._stack else "(ad hoc)"

    def _bucket(self, label: str | None = None) -> PhaseStats:
        name = label or self.current_phase
        if name not in self.phases:
            self.phases[name] = PhaseStats(label=name)
        return self.phases[name]

    @contextmanager
    def phase(self, label: str) -> Iterator[PhaseStats]:
        """Attribute wall time (and nested pool work) to ``label``."""
        bucket = self._bucket(label)
        self._stack.append(label)
        started = time.perf_counter()  # detlint: ignore[DET002] -- RunStats timing, not part of results
        try:
            yield bucket
        finally:
            self._stack.pop()
            bucket.seconds += time.perf_counter() - started  # detlint: ignore[DET002]

    def count_pool_work(self, queries: int, pool_tasks: int) -> None:
        """Record one ``StudyRunner.answers`` call against the active phase."""
        bucket = self._bucket()
        bucket.queries += queries
        bucket.pool_tasks += pool_tasks

    @property
    def total_queries(self) -> int:
        return sum(p.queries for p in self.phases.values())

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases.values())


# ----------------------------------------------------------------------
# Worker-side entry points

#: World inherited by forked pool workers.  Set immediately before the
#: pool is created and cleared right after it shuts down; ``fork``
#: snapshots it into each child, so the corpus/index never crosses a
#: pipe.
_WORKER_WORLD: "World | None" = None


class ChunkExecutionError(RuntimeError):
    """A worker chunk failed with containment disabled (fail-fast path).

    Wraps the originating exception with the engine name and the query
    ids of the chunk, so a crash in a pool worker is attributable
    without digging through executor tracebacks.
    """

    def __init__(self, engine: str, queries: list[Query], cause: BaseException) -> None:
        ids = tuple(query.id for query in queries)
        head = ", ".join(ids[:4]) + (", ..." if len(ids) > 4 else "")
        super().__init__(
            f"engine {engine!r} chunk of {len(ids)} queries [{head}] failed: {cause}"
        )
        self.engine = engine
        self.query_ids = ids


@dataclass
class ChunkOutcome:
    """A process-pool chunk's answers plus the worker's telemetry delta.

    Event counters and quarantine records accumulated inside a forked
    worker would die with it; the worker ships the deltas home with the
    answers and the parent merges them, keeping ``render_stats`` honest
    about work done on the other side of the fork.
    """

    answers: list[Answer]
    events: dict[str, int] = field(default_factory=dict)
    quarantined: tuple[QuarantineRecord, ...] = ()
    coverage: tuple[ShardCoverage, ...] = ()


def _execute_chunk(
    world: "World", engine_name: str, queries: list[Query], attempt: int = 1
) -> list[Answer]:
    """Answer one chunk against ``world`` (shared by both executors).

    The ``"runner.chunk"`` fault site lives here: a plan can crash a
    whole chunk deterministically, keyed by (engine, first query id,
    size) so a parent-side resubmission — which bumps ``attempt`` —
    can deterministically succeed.
    """
    ctx = world.resilience
    if ctx is not None and queries:
        key = (engine_name, queries[0].id, len(queries))
        ctx.injector.check("runner.chunk", key, attempt, clock=ctx.clock)
    return world.engines[engine_name].answer_all(queries)


def _answer_chunk(
    engine_name: str, queries: list[Query], attempt: int = 1
) -> "list[Answer] | ChunkOutcome":
    """Answer one chunk in a forked worker, via the inherited world.

    With resilience installed, returns a :class:`ChunkOutcome` carrying
    the worker-local event/quarantine deltas; without, the plain answer
    list (byte-for-byte the historical protocol).
    """
    world = _WORKER_WORLD
    if world is None:  # pragma: no cover - defensive; fork guarantees it
        raise RuntimeError("worker has no inherited world")
    ctx = world.resilience
    if ctx is None:
        return _execute_chunk(world, engine_name, queries, attempt)
    events_before = ctx.events.snapshot()
    quarantine_before = len(ctx.quarantine)
    coverage_before = len(ctx.coverage)
    answers = _execute_chunk(world, engine_name, queries, attempt)
    return ChunkOutcome(
        answers=answers,
        events=ResilienceEvents.delta(events_before, ctx.events.snapshot()),
        quarantined=ctx.quarantine.records()[quarantine_before:],
        coverage=ctx.coverage.records()[coverage_before:],
    )


def _degraded_answer(engine_name: str, query: Query) -> Answer:
    """The empty placeholder emitted for a quarantined query.

    Keeps every answer list position-aligned with its workload (the
    figure-level subsetting indexes by position) while contributing no
    citations and no ranking — analyses see the cell as missing data.
    """
    return Answer(engine=engine_name, query_id=query.id, text="", citations=())


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# The runner


class StudyRunner:
    """Fans engine workloads out over a worker pool.

    ``workers`` and ``executor`` default to the world's
    :class:`~repro.core.config.StudyConfig`; ``workers=1`` takes the
    exact sequential path the study always had.  Executors:

    * ``"process"`` — ``fork``-based :class:`ProcessPoolExecutor`; the
      world is inherited copy-on-write, chunks of queries go out,
      answers come back.  Worker-side engine memo caches are forked
      copies and die with the pool, so the parent's caches are never
      mutated concurrently.  Falls back to threads where ``fork`` is
      unavailable (with a warning; ``stats.effective_executor`` records
      what actually ran).
    * ``"thread"`` — :class:`ThreadPoolExecutor` sharing the parent's
      engines; :meth:`AnswerEngine.answer` inserts under a lock, so the
      shared memo cache is safe (duplicate computations are
      deterministic and identical).

    Determinism invariant: results are keyed by (engine, chunk index)
    and reassembled in submission order, so for any worker count the
    output is byte-identical to ``workers=1``.

    Failure model: without a resilience context a failing chunk raises
    :class:`ChunkExecutionError` naming the engine and queries (fail
    fast).  With one installed, the chunk is resubmitted with backoff
    and, if still failing, re-run query-by-query in the parent; queries
    that cannot complete are quarantined as degraded answers and the
    run continues.  ``journal`` (a
    :class:`~repro.resilience.journal.RunJournal`) replays completed
    chunks across runs for ``--resume``.
    """

    def __init__(
        self,
        world: "World",
        workers: int | None = None,
        executor: str | None = None,
        stats: RunStats | None = None,
        journal: RunJournal | None = None,
    ) -> None:
        config = world.config
        self._world = world
        self.workers = config.workers if workers is None else workers
        self.executor = config.executor if executor is None else executor
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.executor not in ("process", "thread"):
            raise ValueError(f"unknown executor {self.executor!r}")
        self.stats = stats or RunStats(self.workers, self.executor)
        self._journal = journal
        self._config_fingerprint: str | None = None

    # ------------------------------------------------------------------

    def _resilience(self) -> ResilienceContext | None:
        return getattr(self._world, "resilience", None)

    def answers(self, queries: Sequence[Query]) -> dict[str, list[Answer]]:
        """Every engine's answers to ``queries``, possibly in parallel."""
        queries = list(queries)
        engines = self._world.engines
        ctx = self._resilience()
        if self.workers == 1 or len(queries) < 2:
            self.stats.count_pool_work(len(queries) * len(engines), 0)
            results = {
                name: self._answer_sequential(name, queries, ctx)
                for name in engines
            }
            self._mirror_events(ctx)
            return results
        return self._answers_pooled(queries, ctx)

    def _chunks(self, queries: list[Query]) -> list[list[Query]]:
        size = max(1, -(-len(queries) // self.workers))  # ceil division
        return [queries[i : i + size] for i in range(0, len(queries), size)]

    # ------------------------------------------------------------------
    # Journal keys and event mirroring

    def _journal_key(self, engine_name: str, queries: list[Query]) -> str:
        if self._config_fingerprint is None:
            config = self._world.config
            self._config_fingerprint = format(
                derive_seed(
                    "config", config.seed, config.corpus_scale,
                    config.study_date, config.sizes,
                ),
                "016x",
            )
        ctx = self._resilience()
        plan_fingerprint = "no-resilience" if ctx is None else str(ctx.config.plan)
        return journal_key(
            self._config_fingerprint,
            plan_fingerprint,
            engine_name,
            tuple(query.id for query in queries),
        )

    def _mirror_events(self, ctx: ResilienceContext | None) -> None:
        if ctx is not None:
            self.stats.resilience_events = ctx.events.snapshot()

    # ------------------------------------------------------------------
    # Sequential path

    def _answer_sequential(
        self, name: str, queries: list[Query], ctx: ResilienceContext | None
    ) -> list[Answer]:
        engine = self._world.engines[name]
        if ctx is None and self._journal is None:
            return engine.answer_all(queries)
        key = self._journal_key(name, queries)
        if self._journal is not None:
            replayed = self._journal.lookup(key, self._world.corpus)
            if replayed is not None and len(replayed) == len(queries):
                self.stats.journal_replays += 1
                return replayed
        answers, clean = self._contained_answers(name, engine, queries, ctx)
        if self._journal is not None and clean:
            self._journal.record(key, self.stats.current_phase, name, answers)
        return answers

    def _contained_answers(
        self, name: str, engine, queries: list[Query], ctx: ResilienceContext | None
    ) -> tuple[list[Answer], bool]:
        """Answer query-by-query, quarantining the ones that cannot finish.

        The last rung of the degradation ladder: every query below this
        point has already exhausted its site-level retries (or hit an
        open breaker, or a genuine bug).  Returns the position-aligned
        answers and whether the batch finished clean (journal-worthy).
        """
        if ctx is None or ctx.config.fail_fast:
            return engine.answer_all(queries), True
        answers: list[Answer] = []
        clean = True
        for query in queries:
            try:
                answers.append(engine.answer(query))
            except ResilienceExhausted as exc:
                clean = False
                ctx.events.bump("quarantined_queries")
                ctx.quarantine.record(
                    QuarantineRecord(
                        phase=ctx.current_phase, site=exc.site, engine=name,
                        key=query.id, attempts=exc.attempts, reason=exc.reason,
                    )
                )
                answers.append(_degraded_answer(name, query))
            except Exception as exc:  # containment boundary: keep the run alive
                clean = False
                ctx.events.bump("quarantined_queries")
                ctx.quarantine.record(
                    QuarantineRecord(
                        phase=ctx.current_phase, site="engine.answer", engine=name,
                        key=query.id, attempts=1,
                        reason=f"unhandled {type(exc).__name__}: {exc}",
                    )
                )
                answers.append(_degraded_answer(name, query))
        return answers, clean

    # ------------------------------------------------------------------
    # Pooled path

    def _submit_chunk(
        self, pool, use_processes: bool, name: str, chunk: list[Query], attempt: int
    ) -> Future:
        if use_processes:
            return pool.submit(_answer_chunk, name, chunk, attempt)
        return pool.submit(_execute_chunk, self._world, name, chunk, attempt)

    def _collect_chunk(
        self,
        pool,
        use_processes: bool,
        name: str,
        chunk: list[Query],
        future: Future,
        ctx: ResilienceContext | None,
    ) -> tuple[list[Answer], bool]:
        """One chunk's answers, after containment.  Returns (answers, clean)."""
        attempt = 1
        while True:
            try:
                raw = future.result()
            except Exception as exc:
                if ctx is None or ctx.config.fail_fast:
                    raise ChunkExecutionError(name, chunk, exc) from exc
                delay = ctx.config.retry.delay(attempt)
                if attempt < ctx.config.retry.max_attempts and ctx.deadline_allows(delay):
                    ctx.clock.sleep(delay)
                    ctx.events.bump("chunk_retries")
                    attempt += 1
                    future = self._submit_chunk(pool, use_processes, name, chunk, attempt)
                    continue
                # Chunk-level retries exhausted: salvage the chunk in the
                # parent, query by query, quarantining only what must be.
                ctx.events.bump("chunk_fallbacks")
                return self._contained_answers(
                    name, self._world.engines[name], chunk, ctx
                )
            if isinstance(raw, ChunkOutcome):
                if ctx is not None:
                    ctx.events.merge(raw.events)
                    ctx.quarantine.extend(raw.quarantined)
                    ctx.coverage.extend(raw.coverage)
                return raw.answers, True
            return raw, True

    def _answers_pooled(
        self, queries: list[Query], ctx: ResilienceContext | None
    ) -> dict[str, list[Answer]]:
        global _WORKER_WORLD
        engines = self._world.engines
        chunks = self._chunks(queries)
        use_processes = self.executor == "process" and _fork_available()
        if self.executor == "process" and not use_processes:
            warnings.warn(
                "fork start method unavailable; StudyRunner degrading from the "
                "process executor to threads (results are identical, sharing "
                "semantics differ)",
                RuntimeWarning,
                stacklevel=3,
            )
        self.stats.effective_executor = "process" if use_processes else "thread"

        # Resume: chunks already journalled replay without touching the pool.
        keys: dict[tuple[str, int], str] = {}
        replayed: dict[tuple[str, int], list[Answer]] = {}
        if self._journal is not None:
            for name in engines:
                for index, chunk in enumerate(chunks):
                    key = self._journal_key(name, chunk)
                    keys[(name, index)] = key
                    cached = self._journal.lookup(key, self._world.corpus)
                    if cached is not None and len(cached) == len(chunk):
                        self.stats.journal_replays += 1
                        replayed[(name, index)] = cached

        futures: dict[tuple[str, int], Future] = {}
        fresh: dict[tuple[str, int], tuple[list[Answer], bool]] = {}
        if use_processes:
            # The one allowlisted shared-global write (see conclint
            # CONC001): publish the world for fork inheritance, retract
            # it in the outermost finally no matter what fails.
            _WORKER_WORLD = self._world
        try:
            # Pool creation sits inside the try: if it fails (fd/process
            # limits), the handshake global must still be retracted, or
            # a stale world would leak into every later fork.
            if use_processes:
                pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
            else:
                pool = ThreadPoolExecutor(max_workers=self.workers)
            try:
                for name in engines:
                    for index, chunk in enumerate(chunks):
                        if (name, index) in replayed:
                            continue
                        futures[(name, index)] = self._submit_chunk(
                            pool, use_processes, name, chunk, 1
                        )
                # Collection in submission order — not completion order —
                # is what makes the output independent of scheduling.
                for name in engines:
                    for index, chunk in enumerate(chunks):
                        slot = (name, index)
                        if slot in replayed:
                            continue
                        fresh[slot] = self._collect_chunk(
                            pool, use_processes, name, chunk, futures[slot], ctx
                        )
            finally:
                pool.shutdown()
        finally:
            if use_processes:
                _WORKER_WORLD = None

        if self._journal is not None:
            for slot, (chunk_answers, clean) in fresh.items():
                if clean:
                    self._journal.record(
                        keys[slot], self.stats.current_phase, slot[0], chunk_answers
                    )

        results = {
            name: [
                answer
                for index in range(len(chunks))
                for answer in (
                    replayed[(name, index)]
                    if (name, index) in replayed
                    else fresh[(name, index)][0]
                )
            ]
            for name in engines
        }
        self.stats.count_pool_work(
            len(queries) * len(engines), len(chunks) * len(engines)
        )
        self._mirror_events(ctx)
        return results
