"""Multi-seed replication: are the findings artifacts of one world?

The reproduction is deterministic per seed, which cuts both ways: any
single run could owe its shape to one lucky synthetic web.  This module
reruns the headline metrics across independent seeds and aggregates them
with bootstrap confidence intervals, turning "holds at seed 7" into
"holds in k of n replicates, with the metric at x ± y".

``replicate(...)`` is the programmatic API; ``tools/seed_stability.py``
is the quick CLI view of the same idea.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.config import StudyConfig, WorkloadSizes
from repro.core.study import ComparativeStudy
from repro.core.world import World
from repro.stats.bootstrap import BootstrapResult, bootstrap_ci
from repro.stats.summaries import mean

__all__ = [
    "ClaimCheck",
    "MetricExtractor",
    "ReplicationReport",
    "DEFAULT_METRICS",
    "DEFAULT_CLAIMS",
    "replicate",
]


@dataclass(frozen=True)
class MetricExtractor:
    """A named scalar metric computed from one study run."""

    name: str
    compute: Callable[[ComparativeStudy], float]


@dataclass(frozen=True)
class ClaimCheck:
    """A named boolean claim evaluated on one run's metric values."""

    name: str
    holds: Callable[[dict[str, float]], bool]


@dataclass(frozen=True)
class ReplicationReport:
    """Aggregated multi-seed results."""

    seeds: tuple[int, ...]
    per_seed_metrics: dict[int, dict[str, float]]
    metric_intervals: dict[str, BootstrapResult]
    claim_counts: dict[str, int]

    @property
    def replicate_count(self) -> int:
        return len(self.seeds)

    def claim_rate(self, claim_name: str) -> float:
        """Fraction of replicates in which the claim held."""
        return self.claim_counts[claim_name] / self.replicate_count

    def render(self) -> str:
        """Human-readable replication summary."""
        lines = [f"Replication over {self.replicate_count} seeds: {list(self.seeds)}", ""]
        lines.append("metrics (mean with 95% bootstrap CI over seeds):")
        for name, interval in self.metric_intervals.items():
            lines.append(
                f"  {name:<36} {interval.estimate:7.3f}  "
                f"[{interval.low:7.3f}, {interval.high:7.3f}]"
            )
        lines.append("")
        lines.append("claims (replicates in which each held):")
        for name, count in self.claim_counts.items():
            lines.append(f"  {count}/{self.replicate_count}  {name}")
        return "\n".join(lines)


def _overlap_gap(study_metrics: dict[str, float]) -> float:
    return study_metrics["fig1_perplexity_overlap"] - study_metrics["fig1_gpt4o_overlap"]


DEFAULT_METRICS: tuple[MetricExtractor, ...] = (
    MetricExtractor(
        "fig1_gpt4o_overlap",
        lambda s: s.domain_overlap_ranking().mean_overlap["GPT-4o"],
    ),
    MetricExtractor(
        "fig1_perplexity_overlap",
        lambda s: s.domain_overlap_ranking().mean_overlap["Perplexity"],
    ),
    MetricExtractor(
        "fig4_ce_google_over_claude",
        lambda s: (
            (fig4 := s.freshness()).electronics.median_age_days["Google"]
            / fig4.electronics.median_age_days["Claude"]
        ),
    ),
    MetricExtractor(
        "table1_niche_minus_popular_ssn",
        lambda s: (
            (t1 := s.perturbation_sensitivity()).ss_normal["niche"]
            - t1.ss_normal["popular"]
        ),
    ),
    MetricExtractor(
        "table1_popular_minus_niche_sss",
        lambda s: (
            (t1 := s.perturbation_sensitivity()).ss_strict["popular"]
            - t1.ss_strict["niche"]
        ),
    ),
    MetricExtractor(
        "table2_popular_minus_niche_tau",
        lambda s: (
            (t2 := s.pairwise_agreement()).tau_normal["popular"]
            - t2.tau_normal["niche"]
        ),
    ),
    MetricExtractor(
        "table3_peripheral_minus_mainstream",
        lambda s: (
            (t3 := s.citation_misses()).representative["Infiniti"]
            + t3.representative["Cadillac"]
            - t3.representative["Toyota"]
            - t3.representative["Honda"]
        ) / 2.0,
    ),
)

DEFAULT_CLAIMS: tuple[ClaimCheck, ...] = (
    ClaimCheck("AI-vs-Google overlap gap (Perplexity > GPT-4o)",
               lambda m: _overlap_gap(m) > 0),
    ClaimCheck("Google cites >1.3x older than Claude (electronics)",
               lambda m: m["fig4_ce_google_over_claude"] > 1.3),
    ClaimCheck("niche more order-sensitive than popular (normal)",
               lambda m: m["table1_niche_minus_popular_ssn"] > 0.5),
    ClaimCheck("strict grounding inverts popular/niche stability",
               lambda m: m["table1_popular_minus_niche_sss"] > 0),
    ClaimCheck("popular pairwise consistency exceeds niche",
               lambda m: m["table2_popular_minus_niche_tau"] > 0.1),
    ClaimCheck("peripheral makes miss citations more than mainstream",
               lambda m: m["table3_peripheral_minus_mainstream"] > 0.15),
)

_REPLICATION_SIZES = WorkloadSizes(
    ranking_queries=150,
    comparison_popular=30,
    comparison_niche=30,
    intent_queries=90,
    freshness_queries_per_vertical=20,
    perturbation_queries=10,
    perturbation_runs=5,
    pairwise_queries=6,
    citation_queries=40,
)


def replicate(
    seeds: Sequence[int],
    metrics: Sequence[MetricExtractor] = DEFAULT_METRICS,
    claims: Sequence[ClaimCheck] = DEFAULT_CLAIMS,
    sizes: WorkloadSizes = _REPLICATION_SIZES,
    *,
    bootstrap_resamples: int = 1000,
) -> ReplicationReport:
    """Run the metrics and claims across ``seeds`` and aggregate."""
    if not seeds:
        raise ValueError("at least one seed is required")
    if len(set(seeds)) != len(seeds):
        raise ValueError("seeds must be distinct")

    per_seed: dict[int, dict[str, float]] = {}
    claim_counts = {claim.name: 0 for claim in claims}
    for seed in seeds:
        study = ComparativeStudy(World.build(StudyConfig(seed=seed, sizes=sizes)))
        values = {metric.name: float(metric.compute(study)) for metric in metrics}
        per_seed[seed] = values
        for claim in claims:
            claim_counts[claim.name] += bool(claim.holds(values))

    intervals = {}
    for metric in metrics:
        sample = [per_seed[seed][metric.name] for seed in seeds]
        if len(sample) == 1:
            intervals[metric.name] = BootstrapResult(
                estimate=sample[0], low=sample[0], high=sample[0],
                confidence=0.95, resamples=0,
            )
        else:
            intervals[metric.name] = bootstrap_ci(
                sample, mean, resamples=bootstrap_resamples, seed=0
            )
    return ReplicationReport(
        seeds=tuple(seeds),
        per_seed_metrics=per_seed,
        metric_intervals=intervals,
        claim_counts=claim_counts,
    )
