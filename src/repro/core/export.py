"""Serialization of experiment results to plain JSON-able structures.

Every result object from :class:`repro.core.study.ComparativeStudy` can
be flattened to a dictionary of primitives, so runs can be archived,
diffed across seeds, or consumed by external plotting tools.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
from typing import Any

__all__ = ["result_to_dict", "results_to_json"]


def _convert(value: Any) -> Any:
    """Recursively convert a result value to JSON-able primitives."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, float):
        return None if math.isnan(value) else value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _convert(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {_key(key): _convert(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        converted = [_convert(item) for item in value]
        if isinstance(value, (set, frozenset)):
            converted.sort(key=repr)
        return converted
    raise TypeError(f"cannot serialize {type(value).__name__}: {value!r}")


def _key(key: Any) -> str:
    if isinstance(key, enum.Enum):
        return str(key.value)
    return str(key)


def result_to_dict(result: Any) -> dict[str, Any]:
    """Flatten a study result (dataclass) into JSON-able primitives.

    ``NaN`` floats (e.g. a median over an empty sample) become ``None``;
    enum values collapse to their string values; sets become sorted lists.
    """
    converted = _convert(result)
    if not isinstance(converted, dict):
        raise TypeError("result_to_dict expects a dataclass result object")
    return converted


def results_to_json(results: dict[str, Any], indent: int = 2) -> str:
    """Serialize a mapping of experiment id -> result to a JSON document."""
    payload = {
        experiment_id: result_to_dict(result)
        for experiment_id, result in results.items()
    }
    return json.dumps(payload, indent=indent, sort_keys=True)
