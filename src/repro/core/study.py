"""ComparativeStudy: one method per paper table/figure.

Each method builds its workload from the study config, runs the systems,
and returns a typed result object.  The benchmark harness and the
experiment registry are thin wrappers over these methods.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.analysis.citations import CitationMissReport, citation_miss_rates
from repro.analysis.concentration import ConcentrationReport, domain_concentration
from repro.analysis.freshness import FreshnessReport, freshness_by_engine
from repro.analysis.overlap import OverlapReport, domain_overlap
from repro.analysis.pairwise import pairwise_consistency
from repro.analysis.perturbations import PerturbationKind, sensitivity
from repro.analysis.typology import TypologyReport, typology_by_intent
from repro.core.runner import StudyRunner
from repro.core.world import World
from repro.engines.base import Answer
from repro.engines.generative import context_from_pages
from repro.engines.retrieval import SourcingPolicy
from repro.entities.queries import (
    PopularityClass,
    Query,
    comparison_queries,
    intent_queries,
    ranking_queries,
)
from repro.entities.verticals import (
    AUTOMOTIVE_VERTICALS,
    CONSUMER_TOPICS,
    ELECTRONICS_VERTICALS,
    NICHE_VERTICALS,
)
from repro.llm.context import ContextWindow
from repro.llm.model import GroundingMode, RankedAnswer
from repro.resilience.faults import ResilienceExhausted
from repro.resilience.quarantine import QuarantineRecord

__all__ = [
    "ComparativeStudy",
    "Fig2Result",
    "Fig4Result",
    "Table1Result",
    "Table2Result",
    "Table3Result",
]


@dataclass(frozen=True)
class Fig2Result:
    """Figure 2: overlap on popular vs niche comparison queries."""

    vs_google_popular: OverlapReport
    vs_google_niche: OverlapReport
    vs_gemini_popular: OverlapReport
    vs_gemini_niche: OverlapReport

    def overlap_shift(self, system: str) -> float:
        """Niche-minus-popular overlap change vs Google (percentage points
        as a fraction)."""
        return (
            self.vs_google_niche.mean_overlap[system]
            - self.vs_google_popular.mean_overlap[system]
        )


@dataclass(frozen=True)
class Fig4Result:
    """Figure 4 / Section 2.3: ages and domain concentration per vertical."""

    electronics: FreshnessReport
    automotive: FreshnessReport
    electronics_concentration: ConcentrationReport
    automotive_concentration: ConcentrationReport


@dataclass(frozen=True)
class Table1Result:
    """Table 1: Delta_avg per (setting, cell)."""

    ss_normal: dict[str, float]   # "popular"/"niche" -> Delta_avg
    ss_strict: dict[str, float]
    esi: dict[str, float]


@dataclass(frozen=True)
class Table2Result:
    """Table 2: Kendall tau per (setting, grounding)."""

    tau_normal: dict[str, float]
    tau_strict: dict[str, float]


@dataclass(frozen=True)
class Table3Result:
    """Table 3 + surrounding text: citation-miss statistics."""

    report: CitationMissReport
    representative: dict[str, float]  # display name -> miss rate
    overall_miss_rate: float


def _mean(values: Sequence[float]) -> float:
    """Mean of a result cell; NaN when every query was filtered out.

    Tiny workloads (or strict filters) can empty a setting's cell —
    e.g. every query lost its context or had fewer than two candidates.
    The paper's tables simply have no number there, so the aggregation
    reports NaN instead of dividing by zero.
    """
    return sum(values) / len(values) if values else float("nan")


class ComparativeStudy:
    """Runs the paper's experiments against a :class:`World`.

    ``runner`` controls execution strategy (worker pools); it defaults
    to a :class:`StudyRunner` built from the world's config, which is
    sequential at ``workers=1``.  Results are identical for any runner.
    """

    def __init__(self, world: World, runner: StudyRunner | None = None) -> None:
        self._world = world
        self._runner = runner if runner is not None else StudyRunner(world)

    @property
    def world(self) -> World:
        return self._world

    @property
    def runner(self) -> StudyRunner:
        return self._runner

    # ------------------------------------------------------------------
    # Shared helpers

    def _answers(self, queries: Sequence[Query]) -> dict[str, list[Answer]]:
        return self._runner.answers(queries)

    #: The evidence-retrieval behaviour of "gpt-4o-search-preview with web
    #: search enabled" (Section 3.1): a relevance-dominant search tool with
    #: only mild persona shaping — it fetches what matches, not what the
    #: answering model would editorially prefer.
    EVIDENCE_POLICY = SourcingPolicy(
        earned_affinity=0.15,
        brand_affinity=0.05,
        social_affinity=0.1,
        retailer_affinity=0.0,
        freshness_weight=0.15,
        freshness_half_life_days=180.0,
        authority_weight=0.1,
        quality_weight=0.1,
        relevance_weight=1.0,
        familiarity_pull=0.1,
        candidate_pool=40,
        citations_per_answer=10,
        max_per_domain=2,
        selection_jitter=0.1,
    )

    def _evidence_context(self, query: Query, depth: int = 10) -> ContextWindow:
        """Retrieve the Section 3.1 evidence ``D_q`` for one query.

        Memoized on the world's evidence cache: retrieval depends on
        the query text, the (depth-carrying) policy and the state of
        the index it searches, so the key is (text, policy, index
        epoch) — Tables 1, 2 and 3 run against a shared world without
        ever retrieving the same context twice, and index growth moves
        every key instead of serving stale evidence.
        """
        policy = replace(self.EVIDENCE_POLICY, citations_per_answer=depth)

        def retrieve() -> ContextWindow:
            # The impl entry point, not select_sources: evidence
            # retrieval has its own fault site ("evidence.context", on
            # the cache below), and nesting the engine-side
            # "retrieval.select_sources" site inside it would run two
            # retry ladders over one operation.
            pages = self._world.retriever._select_sources_impl(query.text, policy)
            return context_from_pages(
                pages,
                query.text,
                snippet_cache=self._world.search_engine.snippet_cache,
            )

        try:
            return self._world.evidence_cache.get_or_compute(
                (query.text, policy, self._world.search_engine.index.epoch),
                retrieve,
            )
        except ResilienceExhausted as exc:
            # Graceful degradation: an exhausted evidence retrieval
            # empties this query's context, so the table loops skip the
            # query and the affected cell aggregates to an annotated
            # NaN instead of killing the run.  The quarantine record
            # preserves which cell lost data and why.
            ctx = self._world.resilience
            if ctx is None or ctx.config.fail_fast:
                raise
            ctx.events.bump("evidence_quarantines")
            ctx.quarantine.record(
                QuarantineRecord(
                    phase=ctx.current_phase,
                    site=exc.site,
                    engine="evidence",
                    key=query.id,
                    attempts=exc.attempts,
                    reason=exc.reason,
                )
            )
            return ContextWindow([])

    def _perturbation_queries(self) -> dict[str, list[Query]]:
        sizes = self._world.config.sizes
        seed = self._world.config.seed
        popular = ranking_queries(
            self._world.catalog,
            verticals=("suvs", "electric_cars", "smartphones", "laptops", "airlines"),
            count=sizes.perturbation_queries,
            seed=seed + 31,
            id_prefix="pq-pop",
        )
        niche = ranking_queries(
            self._world.catalog,
            verticals=NICHE_VERTICALS,
            count=sizes.perturbation_queries,
            seed=seed + 32,
            niche_entities=True,
            id_prefix="pq-nic",
        )
        return {"popular": popular, "niche": niche}

    # ------------------------------------------------------------------
    # Figure 1

    def domain_overlap_ranking(self) -> OverlapReport:
        """Figure 1: AI-vs-Google overlap over ranking queries."""
        queries = ranking_queries(
            self._world.catalog,
            verticals=CONSUMER_TOPICS,
            count=self._world.config.sizes.ranking_queries,
            seed=self._world.config.seed + 11,
        )
        return domain_overlap(self._answers(queries))

    # ------------------------------------------------------------------
    # Figure 2

    def domain_overlap_popular_niche(self) -> Fig2Result:
        """Figure 2: overlap on popular vs niche comparison queries."""
        sizes = self._world.config.sizes
        queries = comparison_queries(
            self._world.catalog,
            n_popular=sizes.comparison_popular,
            n_niche=sizes.comparison_niche,
            seed=self._world.config.seed + 12,
            niche_verticals=NICHE_VERTICALS,
        )
        answers = self._answers(queries)

        def subset(cls: PopularityClass) -> dict[str, list[Answer]]:
            keep = [i for i, q in enumerate(queries) if q.popularity_class is cls]
            return {
                name: [system_answers[i] for i in keep]
                for name, system_answers in answers.items()
            }

        popular, niche = subset(PopularityClass.POPULAR), subset(PopularityClass.NICHE)
        return Fig2Result(
            vs_google_popular=domain_overlap(popular, baseline="Google"),
            vs_google_niche=domain_overlap(niche, baseline="Google"),
            vs_gemini_popular=domain_overlap(popular, baseline="Gemini"),
            vs_gemini_niche=domain_overlap(niche, baseline="Gemini"),
        )

    # ------------------------------------------------------------------
    # Figure 3

    def source_typology(self) -> TypologyReport:
        """Figure 3: source composition by intent and system."""
        queries = intent_queries(
            self._world.catalog,
            verticals=ELECTRONICS_VERTICALS,
            count=self._world.config.sizes.intent_queries,
            seed=self._world.config.seed + 13,
        )
        return typology_by_intent(self._answers(queries), queries)

    # ------------------------------------------------------------------
    # Figure 4

    def freshness(self) -> Fig4Result:
        """Figure 4 / Section 2.3: ages and concentration per vertical."""
        sizes = self._world.config.sizes
        electronics_queries = ranking_queries(
            self._world.catalog,
            verticals=ELECTRONICS_VERTICALS,
            count=sizes.freshness_queries_per_vertical,
            seed=self._world.config.seed + 14,
            id_prefix="fq-ce",
        )
        automotive_queries = ranking_queries(
            self._world.catalog,
            verticals=AUTOMOTIVE_VERTICALS,
            count=sizes.freshness_queries_per_vertical,
            seed=self._world.config.seed + 15,
            id_prefix="fq-au",
        )
        clock = self._world.corpus.clock
        electronics_answers = self._answers(electronics_queries)
        automotive_answers = self._answers(automotive_queries)
        return Fig4Result(
            electronics=freshness_by_engine(
                electronics_answers, clock, "consumer_electronics"
            ),
            automotive=freshness_by_engine(
                automotive_answers, clock, "automotive"
            ),
            electronics_concentration=domain_concentration(
                electronics_answers, "consumer_electronics"
            ),
            automotive_concentration=domain_concentration(
                automotive_answers, "automotive"
            ),
        )

    # ------------------------------------------------------------------
    # Table 1

    def perturbation_sensitivity(self) -> Table1Result:
        """Table 1: SS and ESI Delta_avg for popular and niche entities."""
        runs = self._world.config.sizes.perturbation_runs
        llm = self._world.reference_llm
        catalog = self._world.catalog
        workloads = self._perturbation_queries()

        ss_normal: dict[str, float] = {}
        ss_strict: dict[str, float] = {}
        esi: dict[str, float] = {}
        for setting, queries in workloads.items():
            cells: dict[str, list[float]] = {"ssn": [], "sss": [], "esi": []}
            for query in queries:
                context = self._evidence_context(query)
                candidates = list(query.entities)
                if len(candidates) < 2 or len(context) == 0:
                    continue
                common = dict(
                    llm=llm, query=query.text, candidates=candidates,
                    context=context, runs=runs, seed=self._world.config.seed,
                )
                cells["ssn"].append(
                    sensitivity(
                        kind=PerturbationKind.SNIPPET_SHUFFLE,
                        mode=GroundingMode.NORMAL,
                        **common,
                    ).delta_avg
                )
                cells["sss"].append(
                    sensitivity(
                        kind=PerturbationKind.SNIPPET_SHUFFLE,
                        mode=GroundingMode.STRICT,
                        **common,
                    ).delta_avg
                )
                cells["esi"].append(
                    sensitivity(
                        kind=PerturbationKind.ENTITY_SWAP,
                        mode=GroundingMode.NORMAL,
                        catalog=catalog,
                        **common,
                    ).delta_avg
                )
            ss_normal[setting] = _mean(cells["ssn"])
            ss_strict[setting] = _mean(cells["sss"])
            esi[setting] = _mean(cells["esi"])
        return Table1Result(ss_normal=ss_normal, ss_strict=ss_strict, esi=esi)

    # ------------------------------------------------------------------
    # Table 2

    def pairwise_agreement(self) -> Table2Result:
        """Table 2: Kendall tau between holistic and pairwise rankings."""
        llm = self._world.reference_llm
        sizes = self._world.config.sizes
        workloads = self._perturbation_queries()

        tau_normal: dict[str, float] = {}
        tau_strict: dict[str, float] = {}
        for setting, queries in workloads.items():
            taus_n, taus_s = [], []
            for query in queries[: sizes.pairwise_queries]:
                context = self._evidence_context(query)
                candidates = list(query.entities)
                if len(candidates) < 2 or len(context) == 0:
                    continue
                taus_n.append(
                    pairwise_consistency(
                        llm, query.text, candidates, context, GroundingMode.NORMAL
                    ).tau
                )
                taus_s.append(
                    pairwise_consistency(
                        llm, query.text, candidates, context, GroundingMode.STRICT
                    ).tau
                )
            tau_normal[setting] = _mean(taus_n)
            tau_strict[setting] = _mean(taus_s)
        return Table2Result(tau_normal=tau_normal, tau_strict=tau_strict)

    # ------------------------------------------------------------------
    # Table 3

    # The makes Table 3 reports, in the paper's column order.
    TABLE3_ENTITIES = (
        ("Toyota", "suvs:toyota"),
        ("Honda", "suvs:honda"),
        ("Kia", "suvs:kia"),
        ("Chevrolet", "suvs:chevrolet"),
        ("Cadillac", "suvs:cadillac"),
        ("Infiniti", "suvs:infiniti"),
    )

    def citation_misses(self) -> Table3Result:
        """Table 3: representative citation-miss rates on SUV queries."""
        sizes = self._world.config.sizes
        llm = self._world.reference_llm
        queries = ranking_queries(
            self._world.catalog,
            verticals=("suvs",),
            count=sizes.citation_queries,
            seed=self._world.config.seed + 16,
            id_prefix="t3",
        )
        candidates = [e.id for e in self._world.catalog.in_vertical("suvs")]
        answers: list[RankedAnswer] = []
        for query in queries:
            context = self._evidence_context(query)
            answers.append(
                llm.rank_entities(
                    query.text, candidates, context,
                    mode=GroundingMode.NORMAL, top_k=10,
                )
            )
        report = citation_miss_rates(answers)
        representative = {
            name: report.miss_rate.get(entity_id, 0.0)
            for name, entity_id in self.TABLE3_ENTITIES
        }
        return Table3Result(
            report=report,
            representative=representative,
            overall_miss_rate=report.overall_miss_rate,
        )
