"""Experiment registry: paper artifact id -> spec -> runner.

``run_experiment("table1", world)`` executes the experiment and returns
``(result, rendered_text)``.  The registry is what the benchmark harness
and the examples iterate over, and its specs double as the per-experiment
index required by DESIGN.md.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core import report as report_module
from repro.core.study import ComparativeStudy
from repro.core.world import World

__all__ = ["EXPERIMENTS", "ExperimentSpec", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper artifact and how to regenerate it."""

    id: str
    paper_artifact: str
    description: str
    workload: str
    runner: Callable[[ComparativeStudy], object]
    renderer: Callable[[object], str]


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.id: spec
    for spec in (
        ExperimentSpec(
            id="fig1",
            paper_artifact="Figure 1",
            description="AI-vs-Google domain overlap over ranking queries",
            workload="1,000 ranking queries over ten consumer topics; 5 systems",
            runner=lambda study: study.domain_overlap_ranking(),
            renderer=report_module.render_fig1,
        ),
        ExperimentSpec(
            id="fig2",
            paper_artifact="Figure 2",
            description="Domain overlap on popular vs niche entity comparisons",
            workload="200 comparison queries (100 popular / 100 niche)",
            runner=lambda study: study.domain_overlap_popular_niche(),
            renderer=report_module.render_fig2,
        ),
        ExperimentSpec(
            id="fig3",
            paper_artifact="Figure 3",
            description="Source typology (brand/earned/social) by intent and model",
            workload="300 consumer-electronics queries across three intents",
            runner=lambda study: study.source_typology(),
            renderer=report_module.render_fig3,
        ),
        ExperimentSpec(
            id="fig4",
            paper_artifact="Figure 4",
            description="Article-age distributions by engine and vertical",
            workload="ranking queries in consumer electronics and automotive",
            runner=lambda study: study.freshness(),
            renderer=report_module.render_fig4,
        ),
        ExperimentSpec(
            id="table1",
            paper_artifact="Table 1",
            description="SS / strict-grounding / ESI rank sensitivity",
            workload="popular and niche ranking queries, 10 runs per condition",
            runner=lambda study: study.perturbation_sensitivity(),
            renderer=report_module.render_table1,
        ),
        ExperimentSpec(
            id="table2",
            paper_artifact="Table 2",
            description="Kendall tau between holistic and pairwise rankings",
            workload="popular and niche ranking queries, exhaustive pairwise",
            runner=lambda study: study.pairwise_agreement(),
            renderer=report_module.render_table2,
        ),
        ExperimentSpec(
            id="table3",
            paper_artifact="Table 3",
            description="Representative citation-miss rates on SUV queries",
            workload="SUV ranking queries with retrieved evidence",
            runner=lambda study: study.citation_misses(),
            renderer=report_module.render_table3,
        ),
    )
}


def run_experiment(
    experiment_id: str, world: World, study: ComparativeStudy | None = None
) -> tuple[object, str]:
    """Run one experiment by id; returns (result, rendered text).

    Pass ``study`` to share one study (and its runner's stats and worker
    pool settings) across several experiments; by default each call gets
    a fresh study over ``world``.  Either way the experiment's wall time
    lands in the runner's stats under the experiment id.
    """
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    if study is None:
        study = ComparativeStudy(world)
    ctx = world.resilience
    if ctx is not None:
        # Quarantine provenance and the deadline budget are attributed
        # per experiment phase.
        ctx.begin_phase(experiment_id)
    with study.runner.stats.phase(experiment_id):
        result = spec.runner(study)
    rendered = spec.renderer(result)
    if ctx is not None:
        annotations = report_module.render_resilience_annotations(ctx, experiment_id)
        if annotations:
            # Appended only when this phase actually lost data, so a
            # fault-free run renders byte-identically.
            rendered = rendered + "\n" + annotations
    return result, rendered
