"""The study orchestration layer — the library's primary public API.

Typical use::

    from repro.core import StudyConfig, World, ComparativeStudy

    world = World.build(StudyConfig(seed=7))
    study = ComparativeStudy(world)
    fig1 = study.domain_overlap_ranking()      # Figure 1
    table1 = study.perturbation_sensitivity()  # Table 1

:mod:`repro.core.experiments` exposes the same experiments behind a
string registry (``run_experiment("fig1", world)``), and
:mod:`repro.core.report` renders each result as the paper's rows/series.
"""

from repro.core.config import StudyConfig
from repro.core.experiments import EXPERIMENTS, run_experiment
from repro.core.runner import EvidenceCache, RunStats, StudyRunner
from repro.core.study import ComparativeStudy
from repro.core.world import World

__all__ = [
    "ComparativeStudy",
    "EXPERIMENTS",
    "EvidenceCache",
    "RunStats",
    "StudyConfig",
    "StudyRunner",
    "World",
    "run_experiment",
]
