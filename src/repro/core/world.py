"""World assembly: everything the experiments need, from one seed.

A :class:`World` bundles the synthetic web (corpus + registry), the
entity catalog, the Google stand-in, the engine fleet, and a reference
LLM (the "gpt-4o with deterministic settings" of Section 3.1).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import StudyConfig
from repro.core.runner import EvidenceCache
from repro.engines.base import AnswerEngine
from repro.engines.registry import build_engines
from repro.engines.retrieval import Retriever
from repro.entities.catalog import EntityCatalog, build_default_catalog
from repro.llm.model import LLMConfig, SimulatedLLM
from repro.llm.pretraining import PretrainedKnowledge
from repro.llm.rng import derive_seed
from repro.resilience.context import ResilienceContext
from repro.search.engine import SearchEngine
from repro.search.sharding import ShardedSearchEngine
from repro.webgraph.corpus import Corpus, CorpusConfig, CorpusGenerator
from repro.webgraph.domains import DomainRegistry, build_default_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.loop import ServeLoop

__all__ = ["World"]

_log = logging.getLogger(__name__)


@dataclass
class World:
    """A fully assembled study environment."""

    config: StudyConfig
    catalog: EntityCatalog
    registry: DomainRegistry
    corpus: Corpus
    search_engine: SearchEngine
    engines: dict[str, AnswerEngine]
    retriever: Retriever
    reference_llm: SimulatedLLM = field(repr=False)
    #: Shared memo for Section 3.1 evidence contexts: every experiment
    #: run against this world retrieves each (query, depth) context at
    #: most once (see :class:`repro.core.runner.EvidenceCache`).
    evidence_cache: EvidenceCache = field(default_factory=EvidenceCache, repr=False)
    #: Optional resilience context (fault injection + retry/breaker/
    #: quarantine machinery).  ``None`` — the default — leaves every
    #: execution path byte-identical to a world without the layer;
    #: install via :meth:`install_resilience`.
    resilience: "ResilienceContext | None" = field(default=None, repr=False)

    @classmethod
    def build(cls, config: StudyConfig | None = None) -> "World":
        """Assemble a world from a config (defaults to ``StudyConfig()``)."""
        config = config or StudyConfig()
        catalog = build_default_catalog()
        registry = build_default_registry()
        corpus_config = CorpusConfig(
            seed=config.seed,
            pages_per_volume_unit=2.0 * config.corpus_scale,
            study_date=config.study_date,
        )
        started = time.perf_counter()  # detlint: ignore[DET002] -- build-log timing, not part of results
        corpus = CorpusGenerator(registry, catalog, corpus_config).generate()
        _log.info(
            "corpus generated: %d pages, %d domains, %d link edges (%.2fs)",
            len(corpus), len(corpus.domains()), corpus.link_graph.edge_count(),
            time.perf_counter() - started,  # detlint: ignore[DET002]
        )
        return cls.assemble(config, catalog, registry, corpus)

    @classmethod
    def assemble(
        cls,
        config: StudyConfig,
        catalog: EntityCatalog,
        registry: DomainRegistry,
        corpus: Corpus,
    ) -> "World":
        """Assemble a world around an explicit corpus.

        Used by :mod:`repro.aeo.interventions` to rebuild the ecosystem
        after injecting synthetic content; :meth:`build` is this plus the
        default corpus generation.
        """
        started = time.perf_counter()  # detlint: ignore[DET002] -- build-log timing, not part of results
        if config.search_shards:
            # Document-partitioned substrate: float-exact equal to the
            # single-index engine, built in parallel when workers > 1.
            # With resident_shards each shard additionally lives in a
            # supervised long-lived worker process (same floats, a real
            # process boundary for the scatter to survive).
            if config.resident_shards:
                from repro.search.shardexec import ResidentShardedSearchEngine

                shard_engine_type: type[ShardedSearchEngine] = (
                    ResidentShardedSearchEngine
                )
            else:
                shard_engine_type = ShardedSearchEngine
            search_engine: SearchEngine = shard_engine_type(
                corpus,
                registry,
                shards=config.search_shards,
                builders=config.workers,
                build_executor=config.executor,
            )
        else:
            search_engine = SearchEngine(corpus, registry)
        engines = build_engines(
            corpus, registry, catalog, search_engine, study_seed=config.seed
        )
        retriever = Retriever(corpus, registry, search_engine)
        _log.info(
            "ecosystem assembled: %d engines, index of %d docs (%.2fs)",
            len(engines), search_engine.index.doc_count,
            time.perf_counter() - started,  # detlint: ignore[DET002]
        )

        # The Section 3 experiments probe one model ("gpt-4o with
        # deterministic settings"); the reference LLM reuses the GPT-4o
        # engine's seed so both views of the model agree.
        model_seed = derive_seed("model", config.seed, "GPT-4o")
        knowledge = PretrainedKnowledge(corpus, catalog, model_seed=model_seed)
        reference_llm = SimulatedLLM(knowledge, LLMConfig(seed=model_seed))

        return cls(
            config=config,
            catalog=catalog,
            registry=registry,
            corpus=corpus,
            search_engine=search_engine,
            engines=engines,
            retriever=retriever,
            reference_llm=reference_llm,
        )

    def ai_engines(self) -> dict[str, AnswerEngine]:
        """The four generative engines (everything but Google)."""
        return {name: e for name, e in self.engines.items() if name != "Google"}

    def google(self) -> AnswerEngine:
        """The traditional-search baseline."""
        return self.engines["Google"]

    def install_resilience(self, context: ResilienceContext | None) -> None:
        """Attach a resilience context to every fault site in this world.

        Wires the context through the engines (``"engine.answer"``), the
        retriever (``"retrieval.select_sources"``), the evidence cache
        (``"evidence.context"``), and — on a sharded substrate — the
        search engine's scatter (``"search.shard"``); the runner picks
        it up from ``world.resilience`` for chunk containment.  Passing
        ``None`` detaches everything, restoring the exact
        pre-resilience paths.  Forked pool workers inherit the wired
        world copy-on-write, so fault decisions — pure functions of the
        plan seed — agree on both sides of the fork.
        """
        self.resilience = context
        for engine in self.engines.values():
            engine.set_resilience(context)
        self.retriever.set_resilience(context)
        self.evidence_cache.resilience = context
        if hasattr(self.search_engine, "set_resilience"):
            self.search_engine.set_resilience(context)

    def clear_resilience(self) -> None:
        """Detach the resilience layer (convenience for tests)."""
        self.install_resilience(None)

    def serve_loop(self, **kwargs) -> "ServeLoop":
        """An answer-serving loop over this (warm) world.

        Keyword arguments go to :class:`repro.serve.loop.ServeLoop`
        (``workers``, ``max_pending``, ``stats``).  If a resilience
        context is installed the loop shares its clock and breakers, so
        load-generator arrivals and breaker cooldowns live on one
        simulated timeline.
        """
        from repro.serve.loop import ServeLoop

        return ServeLoop(self, **kwargs)

    def clear_caches(self) -> None:
        """Reset every world-level memo to a cold state.

        Drops the engine answer memos, the shared evidence cache, and
        the search substrate's query and snippet caches.  Used by tests
        that compare cold and warm runs; a study never needs it.
        """
        for engine in self.engines.values():
            engine.clear_cache()
        self.evidence_cache.clear()
        self.search_engine.clear_query_cache()
        self.search_engine.snippet_cache.clear()
