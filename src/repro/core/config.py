"""Study configuration.

One :class:`StudyConfig` seeds everything: the corpus, the engines' model
seeds, and every workload generator.  Two studies with equal configs are
bit-identical.
"""

from __future__ import annotations

import datetime as dt
import os
from dataclasses import dataclass, field

from repro.webgraph.dates import DEFAULT_STUDY_DATE

__all__ = [
    "EXECUTORS",
    "StudyConfig",
    "WorkloadSizes",
    "cache_witness_enabled",
    "default_chaos_plan",
    "default_resident_shards",
    "default_search_shards",
    "default_workers",
    "lock_witness_enabled",
]

#: Executor kinds the study runner accepts.
EXECUTORS = ("process", "thread")


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (defaults to 1 = sequential).

    The environment hook lets CI (and users) flip an entire test or
    study run onto the parallel path without touching any call site.
    Malformed values fall back to sequential rather than failing a run.
    """
    raw = os.environ.get("REPRO_WORKERS", "")
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


def default_search_shards() -> int:
    """Search shard count from ``REPRO_SHARDS`` (defaults to 0 = unsharded).

    ``0`` keeps the classic single-index :class:`repro.search.engine.
    SearchEngine`; any positive value assembles worlds around the
    document-partitioned :class:`repro.search.sharding.
    ShardedSearchEngine` with that many shards.  Results are identical
    either way (the sharded engine is float-exact equal to single-shard),
    so like ``REPRO_WORKERS`` this is an env hook that flips a whole CI
    leg onto the sharded path without touching call sites.  Malformed
    values fall back to unsharded rather than failing a run.
    """
    raw = os.environ.get("REPRO_SHARDS", "")
    try:
        return max(0, int(raw)) if raw else 0
    except ValueError:
        return 0


def default_resident_shards() -> bool:
    """Whether ``REPRO_RESIDENT_SHARDS=1`` asked for resident workers.

    When on (and ``search_shards >= 1``), worlds assemble around
    :class:`repro.search.shardexec.ResidentShardedSearchEngine`: each
    shard's frozen index lives in a supervised long-lived worker
    process and queries scatter over the process boundary.  Results are
    float-identical to the in-process sharded engine, so this is
    another env hook that flips a whole CI leg without touching call
    sites.
    """
    return os.environ.get("REPRO_RESIDENT_SHARDS", "") == "1"


def default_chaos_plan() -> tuple[str, int]:
    """The ambient fault plan from ``REPRO_CHAOS``/``REPRO_CHAOS_SEED``.

    Returns ``(plan text, plan seed)``; an empty plan text means no
    ambient chaos.  Tooling (the serve smoke gate, the sharded
    equivalence fixtures) uses this to run whole suites under a
    recoverable fault plan — whose outputs must stay byte-identical to
    clean runs — without threading CLI flags through every entry point.
    A malformed seed falls back to 0 rather than failing the run; the
    plan text itself is validated by :meth:`repro.resilience.FaultPlan.
    parse` at install time, where a typo should fail loudly.
    """
    text = os.environ.get("REPRO_CHAOS", "").strip()
    raw_seed = os.environ.get("REPRO_CHAOS_SEED", "")
    try:
        seed = int(raw_seed) if raw_seed else 0
    except ValueError:
        seed = 0
    return text, seed


def lock_witness_enabled() -> bool:
    """Whether ``REPRO_LOCK_WITNESS=1`` turned on the lock-order witness.

    Debug-only: when set, every :func:`repro.lockorder.witness_lock`
    site returns an instrumented lock that checks acquisitions against
    the canonical hierarchy (see ``docs/architecture.md``) and raises on
    order inversions instead of letting a deadlock hang the process.
    Checked at lock-construction time, like ``default_workers`` this is
    an env hook so CI can flip a whole test leg without touching call
    sites.
    """
    return os.environ.get("REPRO_LOCK_WITNESS", "") == "1"


def cache_witness_enabled() -> bool:
    """Whether ``REPRO_CACHE_WITNESS=1`` turned on the staleness witness.

    Debug-only: when set, every :func:`repro.cachewitness.witness_for`
    site returns a live witness that fingerprints stored values at
    insert, re-verifies the fingerprint on every cached read, and checks
    the generation counters of epoch-bearing structures — staleness
    raises ``CacheCoherenceViolation`` deterministically instead of
    silently skewing results (see ``docs/architecture.md``).  Checked at
    cache-construction time, like :func:`lock_witness_enabled` this is
    an env hook so CI can flip a whole test leg without touching call
    sites.
    """
    return os.environ.get("REPRO_CACHE_WITNESS", "") == "1"


@dataclass(frozen=True)
class WorkloadSizes:
    """Per-experiment workload sizes.

    Defaults follow the paper (1,000 ranking queries; 100+100 comparison
    queries; 300 intent queries; 10 perturbation runs per condition).
    Tests shrink these for speed.
    """

    ranking_queries: int = 1000
    comparison_popular: int = 100
    comparison_niche: int = 100
    intent_queries: int = 300
    freshness_queries_per_vertical: int = 40
    perturbation_queries: int = 30
    perturbation_runs: int = 10
    pairwise_queries: int = 12
    citation_queries: int = 120

    def __post_init__(self) -> None:
        for name in (
            "ranking_queries", "comparison_popular", "comparison_niche",
            "intent_queries", "freshness_queries_per_vertical",
            "perturbation_queries", "perturbation_runs",
            "pairwise_queries", "citation_queries",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class StudyConfig:
    """Top-level configuration of a reproduction run."""

    seed: int = 7
    corpus_scale: float = 1.0
    study_date: dt.date = DEFAULT_STUDY_DATE
    sizes: WorkloadSizes = field(default_factory=WorkloadSizes)
    #: Worker pool width for the study runner.  1 = the plain sequential
    #: loop.  Excluded from equality/hash: results are identical for any
    #: worker count (the runner's determinism invariant), so two configs
    #: differing only in execution strategy describe the same study.
    workers: int = field(default_factory=default_workers, compare=False)
    #: "process" (fork-inherited world) or "thread".
    executor: str = field(default="process", compare=False)
    #: Search shard count; 0 = the classic single-index engine, N >= 1
    #: = the document-partitioned sharded engine.  Excluded from
    #: equality/hash like ``workers``: the sharded engine is float-exact
    #: equal to single-shard, so two configs differing only in shard
    #: topology describe the same study.
    search_shards: int = field(default_factory=default_search_shards, compare=False)
    #: Keep each shard resident in a supervised worker process
    #: (:class:`repro.search.shardexec.ResidentShardedSearchEngine`).
    #: Only meaningful with ``search_shards >= 1``; excluded from
    #: equality/hash like the other execution-strategy knobs because the
    #: resident engine is float-exact equal to the in-process one.
    resident_shards: bool = field(
        default_factory=default_resident_shards, compare=False
    )

    def __post_init__(self) -> None:
        if self.corpus_scale <= 0:
            raise ValueError("corpus_scale must be positive")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.search_shards < 0:
            raise ValueError("search_shards must be non-negative")
