"""Study configuration.

One :class:`StudyConfig` seeds everything: the corpus, the engines' model
seeds, and every workload generator.  Two studies with equal configs are
bit-identical.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

from repro.webgraph.dates import DEFAULT_STUDY_DATE

__all__ = ["StudyConfig", "WorkloadSizes"]


@dataclass(frozen=True)
class WorkloadSizes:
    """Per-experiment workload sizes.

    Defaults follow the paper (1,000 ranking queries; 100+100 comparison
    queries; 300 intent queries; 10 perturbation runs per condition).
    Tests shrink these for speed.
    """

    ranking_queries: int = 1000
    comparison_popular: int = 100
    comparison_niche: int = 100
    intent_queries: int = 300
    freshness_queries_per_vertical: int = 40
    perturbation_queries: int = 30
    perturbation_runs: int = 10
    pairwise_queries: int = 12
    citation_queries: int = 120

    def __post_init__(self) -> None:
        for name in (
            "ranking_queries", "comparison_popular", "comparison_niche",
            "intent_queries", "freshness_queries_per_vertical",
            "perturbation_queries", "perturbation_runs",
            "pairwise_queries", "citation_queries",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class StudyConfig:
    """Top-level configuration of a reproduction run."""

    seed: int = 7
    corpus_scale: float = 1.0
    study_date: dt.date = DEFAULT_STUDY_DATE
    sizes: WorkloadSizes = field(default_factory=WorkloadSizes)

    def __post_init__(self) -> None:
        if self.corpus_scale <= 0:
            raise ValueError("corpus_scale must be positive")
