"""Calibration record: every fitted parameter and what pins it down.

The reproduction targets the paper's *shape* — orderings, separations and
crossovers — not its absolute numbers (the substrate is a ~400-domain
synthetic web, not the 2025 live web).  This module documents, for each
knob, the paper observation that constrains it, so a reader can audit
which behaviours are mechanisms and which are fitted magnitudes.

The values themselves live where they are used (:class:`LLMConfig`
defaults, the per-engine ``*_POLICY`` constants, the corpus generator);
:data:`CALIBRATION_NOTES` indexes them, and :func:`calibration_report`
renders the index for humans.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CalibrationNote", "CALIBRATION_NOTES", "calibration_report"]


@dataclass(frozen=True)
class CalibrationNote:
    """One fitted parameter (or parameter group) and its constraint."""

    parameter: str
    location: str
    constrained_by: str
    rationale: str


CALIBRATION_NOTES: tuple[CalibrationNote, ...] = (
    # ------------------------------------------------------------- corpus
    CalibrationNote(
        parameter="EXPOSURE_ALPHA = 1.8",
        location="repro.webgraph.corpus",
        constrained_by="Table 3 miss-rate gradient; Section 3 prior strength",
        rationale=(
            "Super-linear concentration of page coverage on popular "
            "entities; produces the Toyota-to-Infiniti coverage gap that "
            "drives both citation misses and prior confidence."
        ),
    ),
    CalibrationNote(
        parameter="age profiles (earned 75d, brand 320d, social 160d medians; "
        "automotive age_scale 3.6-4.2)",
        location="repro.webgraph.domains / repro.entities.verticals",
        constrained_by="Figure 4 age distributions",
        rationale=(
            "Earned media chases the news cycle, brand pages are evergreen; "
            "automotive publishing cycles run several times slower than "
            "consumer electronics."
        ),
    ),
    CalibrationNote(
        parameter="quality = N(0.38 + 0.2*authority + 0.14*specialist, 0.15)",
        location="repro.webgraph.corpus",
        constrained_by="Figure 1 low AI-vs-Google overlap",
        rationale=(
            "Editorial quality must decouple from backlink authority — "
            "otherwise 'prefer quality' (AI engines) and 'prefer authority' "
            "(SEO) pick the same sources and the overlap gap collapses."
        ),
    ),
    CalibrationNote(
        parameter="long tail: 24 editorial outlets + 2 forums per vertical "
        "(niche verticals 12 + 2)",
        location="repro.webgraph.domains.build_default_registry",
        constrained_by="Figures 1-2 overlap levels and niche shift",
        rationale=(
            "Without a long tail every engine is forced onto the same dozen "
            "domains; niche verticals get a thinner tail, which produces "
            "Figure 2's niche-queries-raise-overlap effect."
        ),
    ),
    # ------------------------------------------------------------ engines
    CalibrationNote(
        parameter="SeoWeights(relevance .42, authority .34, on_page_seo .16, "
        "freshness .08)",
        location="repro.search.seo",
        constrained_by="Figure 3 Google composition; Figure 4 Google ages",
        rationale=(
            "Google's organic blend: authority-heavy with only a weak "
            "freshness preference, which is why its citations run oldest."
        ),
    ),
    CalibrationNote(
        parameter="per-engine SourcingPolicy constants",
        location="repro.engines.{gpt4o,claude,gemini,perplexity}",
        constrained_by="Figures 1, 3, 4 jointly",
        rationale=(
            "GPT-4o: strongest reformulation + fresh earned focus (lowest "
            "overlap).  Claude: heaviest earned concentration, zero social "
            "affinity, freshest citations.  Gemini: reranks Google's own "
            "top results (grounding) with non-SEO preferences.  Perplexity: "
            "broadest mix (retailers + UGC), stalest of the AI engines, "
            "highest overlap with Google."
        ),
    ),
    CalibrationNote(
        parameter="selection_jitter 0.12-0.25",
        location="repro.engines.retrieval.SourcingPolicy",
        constrained_by="Figures 1 and 3 (overlap level; occasional UGC citations)",
        rationale=(
            "A commercial engine's retrieval stack is not a fixed linear "
            "scorer; deterministic per-(query, page) jitter reproduces its "
            "query-to-query variety while keeping runs bit-identical."
        ),
    ),
    # ---------------------------------------------------------------- LLM
    CalibrationNote(
        parameter="confidence = saturation(exposure) * (0.2 + 0.8*popularity); "
        "base_sigma 0.08, anchor 0.55",
        location="repro.llm.pretraining.PretrainedKnowledge",
        constrained_by="Tables 1-3 popular/niche separation",
        rationale=(
            "Prior sharpness grows with pre-training exposure; vague "
            "beliefs shrink toward a bland mid-scale anchor rather than "
            "being randomly extreme."
        ),
    ),
    CalibrationNote(
        parameter="attention_decay 1.03, attention_half_weight 1.5",
        location="repro.llm.model.LLMConfig",
        constrained_by="Table 1 SS (normal): niche 4.15 vs popular 2.30",
        rationale=(
            "Limited attention makes unconstrained reading order-sensitive: "
            "an entity mentioned only late in the window is barely "
            "registered, so shuffling rewrites what the model effectively "
            "read.  Context-dominated (niche) rankings scramble; prior-"
            "dominated (popular) ones move less."
        ),
    ),
    CalibrationNote(
        parameter="gen_noise_normal 0.139, gen_noise_strict 0.004, "
        "conflict_noise 1.38",
        location="repro.llm.model.LLMConfig",
        constrained_by="Table 1 all six cells (fitted by tools/sweep_section3.py)",
        rationale=(
            "Normal-mode generation noise re-rolls with the ordered context "
            "fingerprint (temperature-0 order sensitivity).  Strict-mode "
            "noise is near zero except where many supporting snippets "
            "disagree — reconciling redundant conflicting coverage of a "
            "famous product is ambiguous, summarizing a niche firm's single "
            "source is not (strict column: popular 1.52 vs niche 0.46)."
        ),
    ),
    CalibrationNote(
        parameter="pair_noise 0.0085, pair_noise_vague 0.556 (x (1-conf)^2), "
        "strict_pair_noise 1.035 (x sparsity x (1-conf)^2)",
        location="repro.llm.model.LLMConfig",
        constrained_by="Table 2 tau structure (fitted by tools/sweep_section3.py)",
        rationale=(
            "Pairwise judgments between familiar entities are crisp and, "
            "in strict mode, share the holistic ranking's noise realization "
            "(popular strict tau -> 1.0); unfamiliar pairs fluctuate per "
            "call, and thinly-evidenced pairs approach coin flips."
        ),
    ),
)


def calibration_report() -> str:
    """Human-readable dump of the calibration index."""
    lines = ["Calibration index (parameter — constrained by — rationale)", ""]
    for note in CALIBRATION_NOTES:
        lines.append(f"* {note.parameter}")
        lines.append(f"    where: {note.location}")
        lines.append(f"    constrained by: {note.constrained_by}")
        lines.append(f"    rationale: {note.rationale}")
        lines.append("")
    return "\n".join(lines)
