"""Deterministic fault injection and resilience for the study pipeline.

The paper's apparatus is a fleet of live commercial APIs whose real
failure modes — timeouts, rate limits, truncated responses, partial
retrieval — any large-scale measurement study has to survive.  This
package gives the reproduction the same survival machinery, built on the
repo's determinism contract:

* :mod:`repro.resilience.faults` — a seeded :class:`FaultInjector`
  driven by :func:`repro.llm.rng.derive_rng`: whether a named site
  faults on a given (key, attempt) is a pure function of the fault
  plan, so chaos runs are bit-replayable.
* :mod:`repro.resilience.clock` — :class:`SimClock`, a simulated
  monotonic clock advanced only by backoff sleeps and injected
  timeouts.  No wall-clock reads (detlint DET002 clean).
* :mod:`repro.resilience.policy` — :class:`RetryPolicy` (deterministic
  exponential backoff) and :class:`CircuitBreaker` (per-engine,
  counting *exhausted* operations, never transient attempts, so
  recoverable fault plans cannot trip it).
* :mod:`repro.resilience.quarantine` — the per-query quarantine
  registry with per-cell provenance for report annotations.
* :mod:`repro.resilience.coverage` — the shard-coverage registry: when
  a ``search.shard`` scatter is exhausted the merge degrades to the
  surviving shards and a :class:`ShardCoverage` record preserves which
  shards went missing, per query, for the same report annotations.
* :mod:`repro.resilience.context` — :class:`ResilienceContext`, the
  world-level bundle the fault sites consult, and its retrying
  :meth:`~ResilienceContext.call` primitive.
* :mod:`repro.resilience.journal` — :class:`RunJournal`, the on-disk
  record of completed (engine, query-chunk) results behind
  ``python -m repro run --resume``.

Invariants: with no resilience context installed the pipeline's code
paths are unchanged; with an empty fault plan installed, outputs are
byte-identical to the uninstalled tree; with a recoverable plan
(failures per key < retry attempts) outputs are byte-identical and the
retries surface in ``render_stats``.
"""

from repro.resilience.clock import SimClock
from repro.resilience.context import (
    ResilienceConfig,
    ResilienceContext,
    ResilienceEvents,
)
from repro.resilience.coverage import ShardCoverage, ShardCoverageLog
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilienceExhausted,
)
from repro.resilience.journal import RunJournal
from repro.resilience.policy import CircuitBreaker, RetryPolicy
from repro.resilience.quarantine import Quarantine, QuarantineRecord

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "Quarantine",
    "QuarantineRecord",
    "ResilienceConfig",
    "ResilienceContext",
    "ResilienceEvents",
    "ResilienceExhausted",
    "RetryPolicy",
    "RunJournal",
    "ShardCoverage",
    "ShardCoverageLog",
    "SimClock",
]
