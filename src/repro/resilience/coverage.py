"""Shard-coverage provenance: which scatters lost which shards, and why.

The sharded substrate's contract is float-exactness over *all* shards.
When a shard is down past the resilience ladder (retries exhausted,
breaker open), the scatter degrades to a partial merge over the
survivors — still float-exact *for the shards that answered*, but no
longer the full-corpus ranking.  Like PR 5's quarantine ladder, that
loss must be a measured, annotated event, never a silent ranking skew:
every degraded scatter produces a :class:`ShardCoverage` record naming
the experiment phase, the query, and exactly which shards were missing
and why, and the record flows into study/serve output as an annotated
cell.

:class:`ShardCoverageLog` is the world-level registry (one per
:class:`~repro.resilience.context.ResilienceContext`).  Besides the
lock-guarded append-only list it keeps a **thread-local** record
counter, so a caller can bracket a computation with
:meth:`~ShardCoverageLog.mark` / :meth:`~ShardCoverageLog.recorded_since`
and learn whether *its own thread* degraded coverage inside — the
signal the query cache, the engine memo and the evidence cache use to
skip memoization of partial results.  Thread-locality matters in the
serving tier: concurrent workers must not see each other's losses, or
a full-coverage answer would be refused memoization because an
unrelated request degraded at the same moment.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.lockorder import witness_lock

__all__ = ["ShardCoverage", "ShardCoverageLog"]


@dataclass(frozen=True)
class ShardCoverage:
    """Provenance of one partial-coverage scatter.

    ``missing`` and ``reasons`` are parallel tuples: ``reasons[i]`` is
    the exhaustion reason for shard ``missing[i]``.  Only picklable
    primitives, so records cross the study runner's result pipe intact.
    """

    phase: str
    query: str
    total_shards: int
    missing: tuple[int, ...]
    reasons: tuple[str, ...]

    @property
    def surviving(self) -> int:
        """How many shards actually contributed to the merge."""
        return self.total_shards - len(self.missing)

    @property
    def fraction(self) -> float:
        """Surviving shards over total — 0.0 means an empty page."""
        if not self.total_shards:
            return 0.0
        return self.surviving / self.total_shards


class _ThreadCounter(threading.local):
    """Per-thread count of records appended by *this* thread."""

    def __init__(self) -> None:
        self.count = 0


class ShardCoverageLog:
    """Append-only, lock-guarded coverage registry (shared across threads)."""

    def __init__(self) -> None:
        self._records: list[ShardCoverage] = []
        self._lock = witness_lock("ShardCoverageLog._lock")
        self._local = _ThreadCounter()

    def __len__(self) -> int:
        return len(self._records)

    def record(self, record: ShardCoverage) -> None:
        with self._lock:
            self._records.append(record)
        # Bumped outside the lock: the counter is thread-local, so only
        # the recording thread ever reads or writes its own slot.
        self._local.count += 1

    def extend(self, records: tuple[ShardCoverage, ...]) -> None:
        """Merge records collected in a forked pool worker.

        A parent-side merge, not a local degradation: the thread-local
        counter is deliberately untouched, so folding a worker's delta
        never makes the collecting thread look degraded.
        """
        with self._lock:
            self._records.extend(records)

    def records(self, phase: str | None = None) -> tuple[ShardCoverage, ...]:
        """A snapshot, optionally filtered to one experiment phase."""
        with self._lock:
            snapshot = tuple(self._records)
        if phase is None:
            return snapshot
        return tuple(r for r in snapshot if r.phase == phase)

    def count(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    # Thread-local degradation bracketing

    def mark(self) -> int:
        """This thread's record count — pair with :meth:`recorded_since`."""
        return self._local.count

    def recorded_since(self, mark: int) -> bool:
        """Whether *this thread* recorded coverage loss since ``mark``."""
        return self._local.count > mark
