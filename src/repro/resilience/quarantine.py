"""The quarantine registry: which cells failed, where, and why.

When the resilience ladder runs out (retries exhausted, deadline spent,
breaker open), the affected query is *quarantined* rather than fatal:
the study keeps running, the cell it fed either degrades or goes NaN,
and a :class:`QuarantineRecord` preserves the provenance — experiment
phase, fault site, engine, query, attempt count, reason — so the report
can annotate exactly which numbers lost data.  ``kind`` distinguishes
full quarantine (the query produced no usable answer) from degradation
(a fallback answer was produced, e.g. prior-only with no citations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lockorder import witness_lock

__all__ = ["Quarantine", "QuarantineRecord"]


@dataclass(frozen=True)
class QuarantineRecord:
    """Provenance of one quarantined or degraded query."""

    phase: str
    site: str
    engine: str
    key: str
    attempts: int
    reason: str
    kind: str = "quarantined"  # or "degraded"


class Quarantine:
    """Append-only, lock-guarded record list (shared across threads)."""

    def __init__(self) -> None:
        self._records: list[QuarantineRecord] = []
        self._lock = witness_lock("Quarantine._lock")

    def __len__(self) -> int:
        return len(self._records)

    def record(self, record: QuarantineRecord) -> None:
        with self._lock:
            self._records.append(record)

    def extend(self, records: tuple[QuarantineRecord, ...]) -> None:
        """Merge records collected in a forked pool worker."""
        with self._lock:
            self._records.extend(records)

    def records(self, phase: str | None = None) -> tuple[QuarantineRecord, ...]:
        """A snapshot, optionally filtered to one experiment phase."""
        with self._lock:
            snapshot = tuple(self._records)
        if phase is None:
            return snapshot
        return tuple(r for r in snapshot if r.phase == phase)

    def count(self, kind: str | None = None) -> int:
        with self._lock:
            if kind is None:
                return len(self._records)
            return sum(1 for r in self._records if r.kind == kind)
