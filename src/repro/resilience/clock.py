"""A simulated clock for deterministic backoff and deadlines.

Real retry machinery sleeps on the wall clock; that is both slow and a
determinism leak (detlint DET002).  :class:`SimClock` replaces it: time
is a counter advanced only by explicit :meth:`sleep` calls — backoff
delays and injected timeout durations — so a chaos run's "elapsed time"
is a pure function of what failed, and two runs with the same fault
plan observe identical clocks.
"""

from __future__ import annotations

from repro.lockorder import witness_lock

__all__ = ["SimClock"]


class SimClock:
    """Monotonic simulated seconds; thread-safe, starts at zero."""

    def __init__(self) -> None:
        self._now = 0.0
        self._lock = witness_lock("SimClock._lock")

    def now(self) -> float:
        """Current simulated time in seconds."""
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        """Advance the clock; negative durations are ignored."""
        if seconds <= 0:
            return
        with self._lock:
            self._now += seconds
