"""The run journal: completed (engine, query-chunk) results on disk.

``python -m repro run --journal PATH`` records every chunk the runner
completes as one JSON line; ``--resume`` reloads the file and replays
the recorded chunks instead of recomputing them, so an interrupted (or
chaos-aborted) study continues from where it stopped — only the missing
chunks run.

Keys are content hashes (:func:`derive_seed`) over the study config
fingerprint, the fault plan, the engine, and the chunk's query ids, so
a journal written under one configuration can never leak results into
another.  Answers are stored citation-light (url + domain); pages are
rehydrated from the deterministic corpus at replay, and any url the
corpus cannot resolve invalidates the entry (the chunk just recomputes).
Chunks that ended with quarantined queries are *not* recorded — the
journal holds completed results only.
"""

from __future__ import annotations

import json
import pathlib

from repro.engines.base import Answer, Citation
from repro.llm.rng import derive_seed
from repro.lockorder import witness_lock

__all__ = ["RunJournal", "journal_key"]


def journal_key(
    config_fingerprint: str, plan_fingerprint: str, engine: str, query_ids: tuple[str, ...]
) -> str:
    """Content hash identifying one (config, plan, engine, chunk)."""
    return format(
        derive_seed("journal", config_fingerprint, plan_fingerprint, engine, *query_ids),
        "016x",
    )


def _serialize_answer(answer: Answer) -> dict:
    return {
        "engine": answer.engine,
        "query_id": answer.query_id,
        "text": answer.text,
        "ranked": list(answer.ranked_entities),
        "citations": [
            {"url": c.url, "domain": c.domain, "paged": c.page is not None}
            for c in answer.citations
        ],
    }


def _deserialize_answer(raw: dict, corpus) -> Answer | None:
    """Rebuild one answer; ``None`` when the corpus cannot rehydrate it."""
    citations = []
    for item in raw["citations"]:
        page = None
        if item["paged"]:
            try:
                page = corpus.by_url(item["url"])
            except KeyError:
                return None
        citations.append(Citation(url=item["url"], domain=item["domain"], page=page))
    return Answer(
        engine=raw["engine"],
        query_id=raw["query_id"],
        text=raw["text"],
        citations=tuple(citations),
        ranked_entities=tuple(raw["ranked"]),
    )


class RunJournal:
    """Append-only chunk-result journal behind ``run --journal/--resume``.

    With ``resume=True`` an existing file is loaded and appended to;
    otherwise the file is truncated so stale entries from a previous
    configuration cannot shadow fresh work.  Lines that fail to parse
    are skipped (a crash mid-write leaves at most one torn tail line).
    Writes open/append/close per record — no long-lived handle crosses
    a ``fork``, and every write is flushed by close.
    """

    def __init__(self, path: str | pathlib.Path, resume: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.resumed = resume
        self._entries: dict[str, dict] = {}
        self._lock = witness_lock("RunJournal._lock")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._load()
        else:
            self.path.write_text("")

    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                entry["answers"]
            except (ValueError, KeyError, TypeError):
                continue
            self._entries[key] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def lookup(self, key: str, corpus) -> list[Answer] | None:
        """Replay one chunk, or ``None`` if absent / not rehydratable."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        answers = []
        for raw in entry["answers"]:
            answer = _deserialize_answer(raw, corpus)
            if answer is None:
                return None
            answers.append(answer)
        return answers

    def record(
        self, key: str, phase: str, engine: str, answers: list[Answer]
    ) -> None:
        """Persist one completed chunk (idempotent per key)."""
        entry = {
            "key": key,
            "phase": phase,
            "engine": engine,
            "answers": [_serialize_answer(a) for a in answers],
        }
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = entry
            # The append stays under the lock on purpose: the dedupe
            # check and the write must be atomic (idempotency), and
            # serialized appends are what keep journal lines untorn.
            # Writes are one short line, open/append/close.
            with self.path.open("a", encoding="utf-8") as handle:  # locklint: ignore[LOCK002] -- dedupe+append must be atomic; bounded one-line write
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
