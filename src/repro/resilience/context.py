"""The world-level resilience bundle and its retrying call primitive.

One :class:`ResilienceContext` per world (installed via
:meth:`repro.core.world.World.install_resilience`) carries everything
the fault sites consult: the seeded injector, the simulated clock, the
retry policy, per-engine circuit breakers, the per-phase deadline
budget, the quarantine registry, and the event counters that surface in
``render_stats``.  Forked pool workers inherit a copy-on-write snapshot;
their event/quarantine deltas travel back with the chunk results and
are merged by the runner, mirroring the engine memo caches' process
model.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.lockorder import witness_lock
from repro.resilience.clock import SimClock
from repro.resilience.coverage import ShardCoverageLog
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    ResilienceExhausted,
)
from repro.resilience.policy import CircuitBreaker, RetryPolicy
from repro.resilience.quarantine import Quarantine

__all__ = ["ResilienceConfig", "ResilienceContext", "ResilienceEvents"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Policy knobs for one resilience context.

    ``deadline_budget`` caps the *simulated* seconds a phase may spend
    on backoff and injected timeouts; when the budget is gone, retries
    stop early and the operation quarantines.  ``fail_fast`` is the
    strict mode: injected faults and exhausted operations propagate
    instead of degrading — the pre-resilience behaviour, on demand.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 5
    breaker_cooldown: float = 300.0
    deadline_budget: float | None = None
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.deadline_budget is not None and self.deadline_budget < 0:
            raise ValueError("deadline_budget must be non-negative")


class ResilienceEvents:
    """Lock-guarded named counters (retries, faults, quarantines, ...)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._lock = witness_lock("ResilienceEvents._lock")

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + by

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A sorted-key copy of every nonzero counter."""
        with self._lock:
            return {name: self._counts[name] for name in sorted(self._counts)}

    def merge(self, delta: dict[str, int]) -> None:
        """Fold a forked worker's counter delta into this process."""
        with self._lock:
            for name in sorted(delta):
                self._counts[name] = self._counts.get(name, 0) + delta[name]

    @staticmethod
    def delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
        """``after - before``, keeping only the keys that moved."""
        moved = {}
        for name in sorted(after):
            change = after[name] - before.get(name, 0)
            if change:
                moved[name] = change
        return moved


class ResilienceContext:
    """Everything the fault sites and containment layers share."""

    def __init__(self, config: ResilienceConfig | None = None) -> None:
        self.config = config or ResilienceConfig()
        self.injector = FaultInjector(self.config.plan)
        self.clock = SimClock()
        self.quarantine = Quarantine()
        self.coverage = ShardCoverageLog()
        self.events = ResilienceEvents()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = witness_lock("ResilienceContext._lock")
        self._phase = "(ad hoc)"
        self._phase_start = 0.0

    # ------------------------------------------------------------------
    # Phases and deadlines

    @property
    def current_phase(self) -> str:
        with self._lock:
            return self._phase

    def begin_phase(self, label: str) -> None:
        """Start a phase: quarantine provenance and the deadline budget
        are attributed from here until the next call."""
        now = self.clock.now()
        with self._lock:
            self._phase = label
            self._phase_start = now

    def deadline_allows(self, delay: float) -> bool:
        """Whether spending ``delay`` more sim-seconds fits the phase
        budget (always true without a budget)."""
        budget = self.config.deadline_budget
        if budget is None:
            return True
        with self._lock:
            start = self._phase_start
        return (self.clock.now() - start) + delay <= budget

    # ------------------------------------------------------------------
    # Breakers

    def breaker_for(self, engine: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(engine)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.clock,
                    failure_threshold=self.config.breaker_threshold,
                    cooldown=self.config.breaker_cooldown,
                )
                self._breakers[engine] = breaker
            return breaker

    # ------------------------------------------------------------------
    # The retrying call primitive

    def call(
        self,
        site: str,
        key: object,
        fn: Callable[[], Any],
        *,
        engine: str | None = None,
        on_fault: Callable[[InjectedFault], None] | None = None,
    ) -> Any:
        """Run ``fn`` behind the resilience ladder at ``site``.

        Injected faults are retried with deterministic exponential
        backoff over the simulated clock; retries stop at the policy's
        attempt cap or when the phase deadline budget is spent, raising
        :class:`ResilienceExhausted`.  With ``engine`` set, the engine's
        circuit breaker gates the call and records its outcome.  In
        ``fail_fast`` mode the first injected fault propagates raw.
        Real exceptions from ``fn`` always propagate — the substrate is
        deterministic, so a genuine bug would fail every retry anyway.

        ``on_fault`` observes every injected fault before the ladder
        reacts to it — the shard supervisor's hook for respawning a
        crashed worker, so the *retry* of a crash-kind fault lands on a
        fresh process.  It runs even in ``fail_fast`` mode (the
        supervisor must stay consistent however the fault propagates),
        and its own exceptions propagate like any real failure.
        """
        breaker = self.breaker_for(engine) if engine is not None else None
        if breaker is not None and not breaker.allow():
            self.events.bump("breaker_short_circuits")
            raise ResilienceExhausted(site, key, 0, "circuit open")
        policy = self.config.retry
        attempt = 1
        while True:
            try:
                self.injector.check(site, key, attempt, clock=self.clock)
                result = fn()
            except InjectedFault as fault:
                self.events.bump("faults_injected")
                if fault.kind == "timeout":
                    self.events.bump("timeouts")
                if on_fault is not None:
                    on_fault(fault)
                if self.config.fail_fast:
                    raise
                delay = policy.delay(attempt)
                if attempt >= policy.max_attempts or not self.deadline_allows(delay):
                    self.events.bump("exhausted")
                    if breaker is not None and breaker.record_exhaustion():
                        self.events.bump("breaker_opens")
                    reason = (
                        f"{fault.kind} fault persisted"
                        if attempt >= policy.max_attempts
                        else f"{fault.kind} fault; phase deadline budget spent"
                    )
                    raise ResilienceExhausted(site, key, attempt, reason) from fault
                self.clock.sleep(delay)
                self.events.bump("retries")
                attempt += 1
            else:
                if breaker is not None:
                    breaker.record_success()
                return result
