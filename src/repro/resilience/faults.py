"""Deterministic fault plans and the injector that executes them.

A :class:`FaultPlan` names *sites* (stable string identifiers of the
places in the pipeline that can fail — ``"engine.answer"``,
``"retrieval.select_sources"``, ``"evidence.context"``,
``"runner.chunk"``) and, per site, which fraction of keys fault and for
how many attempts.  Whether a given ``(site, key, attempt)`` faults is a
pure function of the plan — selection is a :func:`derive_rng` roll over
``(plan seed, site, key)``, never ambient randomness — so a chaos run
can be replayed bit-for-bit, in any process, under any executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.rng import derive_rng

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceExhausted",
]

#: The named injection sites the pipeline consults, with the key each
#: site presents to the injector.
FAULT_SITES = {
    "engine.answer": "(engine name, query id) — one engine answer",
    "retrieval.select_sources": "query text — one evidence retrieval",
    "evidence.context": "evidence-cache key — one Section 3.1 context",
    "runner.chunk": "(engine, first query id, size) — one pool chunk",
    "search.shard": "(shard id, query text) — one shard scatter",
}


class InjectedFault(RuntimeError):
    """A simulated transient failure raised at a fault site.

    ``kind`` distinguishes plain errors from timeouts (which also
    consume simulated seconds) and whole-chunk crashes.  Carries a
    ``__reduce__`` so it survives the process-pool result pipe intact.
    """

    def __init__(self, site: str, key: object, attempt: int, kind: str = "error") -> None:
        super().__init__(
            f"injected {kind} at {site} (key={key!r}, attempt {attempt})"
        )
        self.site = site
        self.key = key
        self.attempt = attempt
        self.kind = kind

    def __reduce__(self):
        return (type(self), (self.site, self.key, self.attempt, self.kind))


class ResilienceExhausted(RuntimeError):
    """An operation failed even after the resilience ladder was applied.

    Raised when retries ran out, the phase deadline budget was consumed,
    or a circuit breaker short-circuited the call.  ``reason`` is a
    plain string (not the causing exception) so the error crosses the
    process-pool boundary without losing information.
    """

    def __init__(self, site: str, key: object, attempts: int, reason: str) -> None:
        super().__init__(
            f"{site} exhausted after {attempts} attempt(s) (key={key!r}): {reason}"
        )
        self.site = site
        self.key = key
        self.attempts = attempts
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.site, self.key, self.attempts, self.reason))


@dataclass(frozen=True)
class FaultSpec:
    """One site's failure behaviour.

    ``rate`` selects the fraction of keys that fault at all (selection
    is per-key, not per-call, so retries of a selected key see the same
    fate).  A selected key fails its first ``failures`` attempts and
    succeeds afterwards; ``failures=None`` means every attempt fails —
    the unrecoverable case that exercises quarantine.  ``kind="timeout"``
    additionally consumes ``timeout_seconds`` of simulated time.

    ``match`` narrows the spec to keys whose ``str()`` contains the
    substring — e.g. ``match="Gemini"`` at ``engine.answer`` (whose keys
    are ``(engine name, query id)``) faults exactly one engine, which is
    how the serving tier's breaker-isolation tests take one engine down
    without touching the rest of the fleet.  One refinement: an all-digit
    ``match`` against a key whose first element is an ``int`` — the
    ``search.shard`` shape, ``(shard id, query text)`` — compares the
    integers instead, so ``search.shard@3`` takes down exactly shard 3
    rather than every query whose text happens to contain a ``3``.
    Matching is part of the key's identity, so it is as deterministic as
    the selection roll.
    """

    site: str
    rate: float = 1.0
    failures: int | None = 1
    kind: str = "error"
    timeout_seconds: float = 5.0
    match: str | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            known = ", ".join(sorted(FAULT_SITES))
            raise ValueError(f"unknown fault site {self.site!r}; known: {known}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.failures is not None and self.failures < 1:
            raise ValueError("failures must be None (always) or at least 1")
        if self.kind not in ("error", "timeout", "crash"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.timeout_seconds < 0:
            raise ValueError("timeout_seconds must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs; the empty plan injects nothing."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.specs

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI plan: ``site[@match]:rate[:failures[:kind]]``
        comma-joined.

        ``failures`` accepts an integer or ``inf`` (never recovers);
        e.g. ``engine.answer:0.2:1,retrieval.select_sources:0.1:inf``.
        ``site@match`` narrows the spec to keys containing the
        substring: ``engine.answer@Gemini:1.0:inf`` takes down exactly
        one engine.  An all-digit match targets a shard id at
        ``search.shard``: ``search.shard@3:1.0:inf:crash`` kills every
        scatter to shard 3 and no other shard, whatever the query text.
        """
        specs = []
        for part in filter(None, (p.strip() for p in text.split(","))):
            fields = part.split(":")
            if len(fields) < 2:
                raise ValueError(f"fault spec {part!r} needs at least site:rate")
            site, rate = fields[0], float(fields[1])
            match: str | None = None
            if "@" in site:
                site, match = site.split("@", 1)
                if not match:
                    raise ValueError(f"fault spec {part!r} has an empty @match")
            failures: int | None = 1
            if len(fields) > 2:
                failures = None if fields[2] in ("inf", "-") else int(fields[2])
            kind = fields[3] if len(fields) > 3 else "error"
            specs.append(
                FaultSpec(
                    site=site, rate=rate, failures=failures, kind=kind, match=match
                )
            )
        return cls(seed=seed, specs=tuple(specs))


def _matches(match: str, key: object) -> bool:
    """Whether a spec's ``match`` selects ``key``.

    All-digit matches against keys led by an ``int`` compare the
    integers — ``"3"`` selects ``(3, "best laptop 2024")`` because its
    shard id is 3, not because the query text contains a ``3``.  Every
    other shape keeps the substring rule over ``str(key)`` (site keys
    like ``("Gemini", "q3")`` stringify their leading element, so the
    engine-name idiom is untouched).
    """
    if (
        match.isdigit()
        and isinstance(key, tuple)
        and key
        and isinstance(key[0], int)
    ):
        return key[0] == int(match)
    return match in str(key)


class FaultInjector:
    """Executes a :class:`FaultPlan` at the pipeline's named sites.

    Stateless beyond the plan: every decision re-derives from
    ``(plan seed, site, key)``, which is what makes injection identical
    across retries, worker processes, and reruns.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._by_site: dict[str, tuple[FaultSpec, ...]] = {}
        for spec in plan.specs:
            self._by_site[spec.site] = self._by_site.get(spec.site, ()) + (spec,)

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def would_fault(self, site: str, key: object, attempt: int) -> FaultSpec | None:
        """The spec that fires for this call, or ``None``."""
        for spec in self._by_site.get(site, ()):
            if spec.match is not None and not _matches(spec.match, key):
                continue
            if spec.rate < 1.0:
                roll = derive_rng("fault", self._plan.seed, site, key).random()
                if roll >= spec.rate:
                    continue
            if spec.failures is not None and attempt > spec.failures:
                continue
            return spec
        return None

    def check(self, site: str, key: object, attempt: int, clock=None) -> None:
        """Raise :class:`InjectedFault` if the plan says this call fails.

        Timeout faults consume their simulated duration from ``clock``
        before raising, modelling a call that burns its budget first.
        """
        spec = self.would_fault(site, key, attempt)
        if spec is None:
            return
        if spec.kind == "timeout" and clock is not None:
            clock.sleep(spec.timeout_seconds)
        raise InjectedFault(site, key, attempt, spec.kind)
