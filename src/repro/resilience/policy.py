"""Retry backoff and per-engine circuit breaking.

Both primitives are deliberately deterministic: backoff delays are a
closed-form function of the attempt number (no jitter — the fault
injector already decides *what* fails deterministically, so delay
randomization would only blur the replay), and the breaker counts
*exhausted operations*, never transient attempts.  That last choice is
load-bearing for the byte-identical invariant: under a recoverable
fault plan every operation eventually succeeds, the breaker never sees
a failure, and results cannot depend on breaker state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lockorder import witness_lock
from repro.resilience.clock import SimClock

__all__ = ["CircuitBreaker", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff over the simulated clock."""

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")

    def delay(self, attempt: int) -> float:
        """Backoff after failing ``attempt`` (1-based), in sim-seconds."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))


class CircuitBreaker:
    """Per-engine breaker over the simulated clock.

    Counts consecutive *exhausted* operations (retries already failed);
    at ``failure_threshold`` the circuit opens and calls short-circuit
    until ``cooldown`` simulated seconds pass, after which one trial is
    allowed (half-open).  A success closes the circuit and resets the
    count.  All state transitions happen under the instance lock so the
    thread executor can share one breaker safely.
    """

    def __init__(
        self,
        clock: SimClock,
        failure_threshold: int = 5,
        cooldown: float = 300.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self._clock = clock
        self._threshold = failure_threshold
        self._cooldown = cooldown
        self._lock = witness_lock("CircuitBreaker._lock")
        self._consecutive = 0
        self._opened_at: float | None = None
        self.opens = 0
        self.short_circuits = 0

    @property
    def is_open(self) -> bool:
        with self._lock:
            return self._opened_at is not None

    def allow(self) -> bool:
        """Whether a call may proceed now (half-open grants one trial)."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock.now() - self._opened_at >= self._cooldown:
                # Half-open: permit a trial; a failure re-opens the
                # circuit from the trial's record_exhaustion.
                return True
            self.short_circuits += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            self._opened_at = None

    def record_exhaustion(self) -> bool:
        """Record one exhausted operation; returns True if this opened
        (or re-opened) the circuit."""
        with self._lock:
            self._consecutive += 1
            if self._consecutive >= self._threshold:
                newly = self._opened_at is None
                self._opened_at = self._clock.now()
                if newly:
                    self.opens += 1
                return newly
            return False
