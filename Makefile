# Convenience targets for the reproduction.

.PHONY: install test chaos sharded shard-chaos lint detlint conclint locklint cachelint lint-baseline conclint-baseline locklint-baseline cachelint-baseline lockwitness cachewitness bench bench-paper serve serve-smoke study calibrate stability examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# The fault-injection suite, sequentially and through the pool: output
# must be byte-identical when every injected fault is retry-recoverable.
chaos:
	REPRO_WORKERS=1 pytest tests/resilience/ -q
	REPRO_WORKERS=4 pytest tests/resilience/ -q

# The search/serve suites on the document-partitioned substrate plus
# the serving gate: sharded results must be byte-identical to the
# single-index engine at any shard count.
sharded:
	REPRO_SHARDS=1 REPRO_WORKERS=4 pytest tests/search/ tests/serve/ tests/engines/ -q
	REPRO_SHARDS=4 REPRO_WORKERS=4 pytest tests/search/ tests/serve/ tests/engines/ -q
	REPRO_SHARDS=4 python tools/serve_smoke.py

# Deterministic shard chaos: the search/serve suites and the serving
# gate with a *recoverable* search.shard fault plan injected into every
# scatter.  Faults recover inside the retry ladder, so every
# byte-identity assertion — and the pinned serve digest — must still
# hold.  (Unrecoverable plans are exercised by the partial-merge and
# chaos-serve suites themselves.)
shard-chaos:
	REPRO_SHARDS=4 REPRO_CHAOS="search.shard:0.3:2:error" REPRO_CHAOS_SEED=5 pytest tests/search/ tests/serve/ -q
	REPRO_SHARDS=4 REPRO_CHAOS="search.shard:0.3:2:error" REPRO_CHAOS_SEED=5 python tools/serve_smoke.py

lint: detlint conclint locklint cachelint

detlint:
	python -m repro lint

conclint:
	python -m repro conclint

locklint:
	python -m repro locklint

cachelint:
	python -m repro cachelint

lint-baseline:
	python -m repro lint --update-baseline

conclint-baseline:
	python -m repro conclint --update-baseline

locklint-baseline:
	python -m repro locklint --update-baseline

cachelint-baseline:
	python -m repro cachelint --update-baseline

# The serving/resilience suites with the runtime lock-order witness
# armed: every witnessed acquisition is checked against the canonical
# hierarchy, so an ordering bug raises instead of hanging a worker.
lockwitness:
	REPRO_LOCK_WITNESS=1 REPRO_WORKERS=4 pytest tests/serve/ tests/resilience/ -q

# The serving/search suites with the runtime cache-staleness witness
# armed: every instrumented cache fingerprints values at insert and
# checks an epoch stamp on every hit, so a stale read raises instead of
# silently skewing results.
cachewitness:
	REPRO_CACHE_WITNESS=1 REPRO_WORKERS=4 pytest tests/serve/ tests/search/ tests/engines/ -q

bench:
	pytest benchmarks/ --benchmark-only --benchmark-disable-gc

bench-paper:
	REPRO_BENCH_SCALE=paper pytest benchmarks/ --benchmark-only --benchmark-disable-gc

# A demo drain of the serving tier: zipfian stream, coalescing stats,
# and the width-independent answer digest on stdout.
serve:
	python -m repro serve --requests 512 --qps 64 --burstiness 4 --workers 4

# The serving gate CI runs: exact determinism checks plus ratio-gated
# timings against the baselines in BENCH_serving.json.
serve-smoke:
	python tools/serve_smoke.py

study:
	python tools/run_full_study.py results/full

calibrate:
	python tools/calibrate.py

stability:
	python tools/seed_stability.py 5

examples:
	python examples/quickstart.py
	python examples/pretraining_bias_probe.py
	python examples/freshness_vertical_study.py
	python examples/aeo_vs_seo_audit.py
	python examples/replication_study.py 2

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results results
	find . -name __pycache__ -type d -exec rm -rf {} +
